//! Estimator-lane head-to-head: evaluates each configured estimation
//! methodology on the same benchmarks, against the same detailed
//! simulations, so CI can gate every lane independently.
//!
//! The lanes share everything the estimator does not change: the
//! binaries, the mappable set, the VLI boundaries (memory-access
//! vectors are extra clustering payload, never a different cutting),
//! and therefore the per-interval detailed simulations already
//! computed by [`crate::experiment::evaluate_benchmark_cached`]. Per
//! lane, only the clustering and weight recalculation rerun — against
//! the artifact store when one is given, where each lane caches under
//! its own namespace (see `cbsp_store::stage_namespaces`).

use crate::experiment::BenchmarkRun;
use cbsp_core::{relative_error, run_cross_binary, stratified_ci, weighted_cpi_with, CbspConfig};
use cbsp_par::Pool;
use cbsp_program::{Binary, Input, Scale};
use cbsp_sim::IntervalSim;
use cbsp_simpoint::{EstimatorConfig, SimPointConfig};
use cbsp_store::{ArtifactStore, CachePolicy, Orchestrator};
use serde::{Deserialize, Serialize};

/// One benchmark's CPI-estimation quality under one estimator lane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaneBenchmark {
    /// Benchmark name.
    pub name: String,
    /// Simulation points the lane selected (shared across binaries).
    pub points: usize,
    /// Relative CPI error vs. the full simulation, per binary
    /// (`[32u, 32o, 64u, 64o]`).
    pub cpi_err: [f64; 4],
    /// Stratified confidence half-width around the estimate, per
    /// binary — exactly zero for single-representative lanes.
    pub ci_half: [f64; 4],
    /// Whether the true CPI lies within `estimate ± ci_half`, per
    /// binary. Trivially false for single-representative lanes (their
    /// interval has zero width but their estimate is not exact).
    pub ci_contains: [bool; 4],
}

impl LaneBenchmark {
    /// Mean CPI error across the four binaries.
    pub fn avg_cpi_err(&self) -> f64 {
        self.cpi_err.iter().sum::<f64>() / 4.0
    }

    /// How many of the four binaries' confidence intervals contain the
    /// true CPI.
    pub fn contains_count(&self) -> usize {
        self.ci_contains.iter().filter(|&&c| c).count()
    }

    /// Whether any binary reports a positive confidence half-width
    /// (i.e. the lane actually samples within phases).
    pub fn has_ci(&self) -> bool {
        self.ci_half.iter().any(|&h| h > 0.0)
    }
}

/// All benchmarks' results for one estimator lane, in suite order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatorLane {
    /// Canonical lane tag (`bbv`, `bbv+mav`, `early`, `stratified`, or
    /// a composite tag for non-canonical configs).
    pub estimator: String,
    /// Per-benchmark evaluations, index-aligned with
    /// [`crate::SuiteResults::benchmarks`].
    pub benchmarks: Vec<LaneBenchmark>,
}

impl EstimatorLane {
    /// Suite-mean CPI error of this lane.
    pub fn avg_cpi_err(&self) -> f64 {
        if self.benchmarks.is_empty() {
            return 0.0;
        }
        self.benchmarks
            .iter()
            .map(LaneBenchmark::avg_cpi_err)
            .sum::<f64>()
            / self.benchmarks.len() as f64
    }
}

/// Evaluates every `estimators` lane on one completed benchmark run,
/// reusing its detailed simulations. Returns one [`LaneBenchmark`] per
/// estimator, index-aligned with `estimators`.
///
/// # Panics
///
/// Panics if a lane's pipeline fails (same-program binaries cannot)
/// or produces boundaries that differ from the base run's — the
/// estimator contract is that feature payload never changes the
/// cutting.
pub fn lane_rows(
    run: &BenchmarkRun,
    scale: Scale,
    interval_target: u64,
    store: Option<&ArtifactStore>,
    pool: &Pool,
    estimators: &[EstimatorConfig],
) -> Vec<LaneBenchmark> {
    let input = match scale {
        Scale::Test => Input::test(),
        Scale::Train => Input::train(),
        Scale::Reference => Input::reference(),
    };
    let bin_refs: Vec<&Binary> = run.binaries.iter().collect();
    estimators
        .iter()
        .map(|&estimator| {
            let config = CbspConfig {
                interval_target,
                estimator,
                simpoint: SimPointConfig {
                    threads: pool.threads(),
                    ..SimPointConfig::default()
                },
                ..CbspConfig::default()
            };
            // The default lane is exactly the base run — reuse it both
            // to save work and because the gate's byte-identity story
            // depends on the default column being the same numbers.
            let lane_cross;
            let cross = if estimator.is_default() {
                &run.cross
            } else {
                lane_cross = match store {
                    Some(store) => {
                        let orch = Orchestrator::new(store, CachePolicy::ReadWrite);
                        let description = format!(
                            "bench {} scale={scale:?} interval={interval_target} estimator={}",
                            run.eval.name,
                            estimator.tag()
                        );
                        orch.run_cross_binary(&bin_refs, &input, &config, &description)
                            .expect("same-program binaries")
                            .0
                    }
                    None => {
                        run_cross_binary(&bin_refs, &input, &config).expect("same-program binaries")
                    }
                };
                assert_eq!(
                    lane_cross.boundaries, run.cross.boundaries,
                    "estimator lanes must share the VLI cutting"
                );
                &lane_cross
            };

            let mut row = LaneBenchmark {
                name: run.eval.name.clone(),
                points: cross.simpoint.points.len(),
                cpi_err: [0.0; 4],
                ci_half: [0.0; 4],
                ci_contains: [false; 4],
            };
            for b in 0..4 {
                let cpis: Vec<f64> = run.vli_interval_stats[b]
                    .iter()
                    .map(IntervalSim::cpi)
                    .collect();
                let est = weighted_cpi_with(&cross.simpoint.points, &cross.weights[b], &cpis);
                let truth = run.eval.true_stats[b].cpi();
                row.cpi_err[b] = relative_error(truth, est);
                row.ci_half[b] = stratified_ci(
                    &cross.simpoint.points,
                    &cross.simpoint.labels,
                    &cross.weights[b],
                    &cpis,
                );
                row.ci_contains[b] = (est - truth).abs() <= row.ci_half[b];
            }
            row
        })
        .collect()
}

/// Renders the estimator head-to-head table: per-benchmark mean CPI
/// error per lane, with confidence-interval containment for lanes
/// that sample within phases.
pub fn render_lanes(lanes: &[EstimatorLane]) -> String {
    let mut out = String::new();
    if lanes.is_empty() {
        return out;
    }
    out.push_str("Estimator head-to-head — mean CPI error across the four binaries\n");
    out.push_str(&format!("{:<10}", "benchmark"));
    for lane in lanes {
        out.push_str(&format!(" {:>18}", lane.estimator));
    }
    out.push('\n');
    let n = lanes[0].benchmarks.len();
    for i in 0..n {
        out.push_str(&format!("{:<10}", lanes[0].benchmarks[i].name));
        for lane in lanes {
            let row = &lane.benchmarks[i];
            let cell = if row.has_ci() {
                format!(
                    "{:.2}% ({}/4 CI)",
                    100.0 * row.avg_cpi_err(),
                    row.contains_count()
                )
            } else {
                format!("{:.2}%", 100.0 * row.avg_cpi_err())
            };
            out.push_str(&format!(" {cell:>18}"));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<10}", "average"));
    for lane in lanes {
        out.push_str(&format!(" {:>17.2}%", 100.0 * lane.avg_cpi_err()));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::evaluate_benchmark;
    use cbsp_sim::MemoryConfig;

    #[test]
    fn lanes_share_slicing_and_default_matches_base() {
        let run = evaluate_benchmark("gzip", Scale::Train, 20_000, &MemoryConfig::table1());
        let estimators: Vec<EstimatorConfig> = ["bbv", "bbv+mav", "stratified"]
            .iter()
            .map(|t| EstimatorConfig::parse(t).expect("known tag"))
            .collect();
        let rows = lane_rows(&run, Scale::Train, 20_000, None, &Pool::new(2), &estimators);
        assert_eq!(rows.len(), 3);
        // The default lane reproduces the base run's VLI numbers
        // exactly — same points, same errors.
        assert_eq!(rows[0].points, run.cross.simpoint.points.len());
        for b in 0..4 {
            assert_eq!(rows[0].cpi_err[b], run.eval.vli.cpi_err[b], "binary {b}");
            assert_eq!(rows[0].ci_half[b], 0.0, "single-rep lanes have no CI");
        }
        // The stratified lane selects at least as many points and its
        // intervals are well-formed.
        assert!(rows[2].points >= rows[0].points);
        for b in 0..4 {
            assert!(rows[2].ci_half[b] >= 0.0);
            assert!(rows[2].cpi_err[b].is_finite());
        }
    }

    #[test]
    fn head_to_head_renders_every_lane_column() {
        let lane = |tag: &str, err: f64, half: f64| EstimatorLane {
            estimator: tag.to_string(),
            benchmarks: vec![LaneBenchmark {
                name: "gzip".to_string(),
                points: 7,
                cpi_err: [err; 4],
                ci_half: [half; 4],
                ci_contains: [half > 0.0; 4],
            }],
        };
        let text = render_lanes(&[lane("bbv", 0.02, 0.0), lane("stratified", 0.01, 0.05)]);
        assert!(text.contains("bbv"), "{text}");
        assert!(text.contains("stratified"), "{text}");
        assert!(text.contains("(4/4 CI)"), "{text}");
        assert!(text.contains("average"), "{text}");
    }
}
