//! Architecture sweep: the premise behind the whole SimPoint
//! methodology is that simulation points are chosen *once* (from purely
//! functional profiles) and then reused for every candidate
//! architecture (paper §1: "Architectures can be compared by simulating
//! their behavior on the code samples selected by SimPoint"). This
//! experiment verifies it: one set of mappable points per benchmark,
//! evaluated on several memory-system designs.

use cbsp_core::{relative_error, run_cross_binary, weighted_cpi_with, CbspConfig};
use cbsp_program::{compile, workloads, Binary, CompileTarget, Input, Scale};
use cbsp_sim::{replay_marker_sliced, CacheLevelConfig, IntervalSim, MemoryConfig};
use cbsp_store::TraceCache;
use std::fmt::Write as _;

/// A named architecture variant.
pub struct ArchVariant {
    /// Row label.
    pub label: &'static str,
    /// The memory configuration.
    pub config: MemoryConfig,
}

/// The standard design-space sample: the paper's Table 1 plus three
/// plausible next-generation designs.
pub fn standard_archs() -> Vec<ArchVariant> {
    let table1 = MemoryConfig::table1();
    let mut big_l2 = table1;
    big_l2.l2 = CacheLevelConfig {
        capacity_bytes: 1024 * 1024,
        associativity: 16,
        line_bytes: 64,
        hit_latency: 16,
    };
    let mut prefetch = table1;
    prefetch.next_line_prefetch = true;
    let mut slow_dram = table1;
    slow_dram.dram_latency = 400;
    let mut gshare = table1;
    gshare.branch = Some(cbsp_sim::BranchConfig::default());
    vec![
        ArchVariant {
            label: "table1",
            config: table1,
        },
        ArchVariant {
            label: "bigL2",
            config: big_l2,
        },
        ArchVariant {
            label: "prefetch",
            config: prefetch,
        },
        ArchVariant {
            label: "slowDRAM",
            config: slow_dram,
        },
        ArchVariant {
            label: "gshare",
            config: gshare,
        },
    ]
}

/// Result row: per-architecture CPI-estimation error of the mapped
/// points, plus whether the fastest (binary, architecture) pair was
/// identified correctly.
pub struct ArchSweepRow {
    /// Benchmark name.
    pub name: String,
    /// Mean CPI error per architecture (across the four binaries).
    pub cpi_err: Vec<f64>,
    /// True 32o CPI per architecture (context for the reader).
    pub true_cpi_32o: Vec<f64>,
    /// Did the estimates rank the fastest (binary, arch) pair correctly?
    pub best_pair_correct: bool,
}

/// Runs the sweep for one benchmark: points chosen once, evaluated on
/// every architecture.
pub fn sweep_benchmark(
    name: &str,
    scale: Scale,
    interval_target: u64,
    archs: &[ArchVariant],
) -> ArchSweepRow {
    let prog = workloads::by_name(name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"))
        .build(scale);
    let input = match scale {
        Scale::Test => Input::test(),
        Scale::Train => Input::train(),
        Scale::Reference => Input::reference(),
    };
    let binaries: Vec<Binary> = CompileTarget::ALL_FOUR
        .iter()
        .map(|&t| compile(&prog, t))
        .collect();
    // Simulation points chosen ONCE — no simulator involved.
    let config = CbspConfig {
        interval_target,
        ..CbspConfig::default()
    };
    let result = run_cross_binary(&binaries.iter().collect::<Vec<_>>(), &input, &config)
        .expect("pipeline succeeds");

    // Each binary is interpreted exactly once; every (arch, binary)
    // cell below is a replay of that recording — the trace carries the
    // branch stream too, so predictor-equipped designs replay exactly.
    let traces = TraceCache::in_memory();
    let mut cpi_err = Vec::with_capacity(archs.len());
    let mut true_cpi_32o = Vec::with_capacity(archs.len());
    let mut best_true = (f64::INFINITY, usize::MAX, usize::MAX);
    let mut best_est = (f64::INFINITY, usize::MAX, usize::MAX);
    for (ai, arch) in archs.iter().enumerate() {
        let mut err = 0.0;
        for (b, bin) in binaries.iter().enumerate() {
            let trace = traces
                .get_or_record(bin, &input)
                .expect("in-memory trace cache is infallible");
            let (full, mut ivs) = replay_marker_sliced(&trace, &arch.config, &result.boundaries[b])
                .expect("recorded trace decodes");
            ivs.resize(result.interval_count(), IntervalSim::default());
            let cpis: Vec<f64> = ivs.iter().map(IntervalSim::cpi).collect();
            let est = weighted_cpi_with(&result.simpoint.points, &result.weights[b], &cpis);
            err += relative_error(full.cpi(), est);
            if b == 1 {
                true_cpi_32o.push(full.cpi());
            }
            if (full.cycles as f64) < best_true.0 {
                best_true = (full.cycles as f64, ai, b);
            }
            let est_cycles = est * full.instructions as f64;
            if est_cycles < best_est.0 {
                best_est = (est_cycles, ai, b);
            }
        }
        cpi_err.push(err / 4.0);
    }
    ArchSweepRow {
        name: name.to_string(),
        cpi_err,
        true_cpi_32o,
        best_pair_correct: (best_true.1, best_true.2) == (best_est.1, best_est.2),
    }
}

/// Renders the sweep table.
pub fn render(rows: &[ArchSweepRow], archs: &[ArchVariant]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Architecture sweep: one set of mappable points, evaluated per design\n\
         (cells = mean CPI-estimation error across the 4 binaries)"
    );
    let _ = write!(s, "{:<10}", "benchmark");
    for a in archs {
        let _ = write!(s, " {:>9}", a.label);
    }
    let _ = writeln!(s, " {:>10}", "best-pair");
    for r in rows {
        let _ = write!(s, "{:<10}", r.name);
        for e in &r.cpi_err {
            let _ = write!(s, " {:>8.2}%", 100.0 * e);
        }
        let _ = writeln!(
            s,
            " {:>10}",
            if r.best_pair_correct {
                "correct"
            } else {
                "WRONG"
            }
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_archs_differ_meaningfully() {
        let archs = standard_archs();
        assert_eq!(archs.len(), 5);
        assert!(archs[4].config.branch.is_some());
        assert!(archs[2].config.next_line_prefetch);
        assert!(archs[3].config.dram_latency > archs[0].config.dram_latency);
        assert!(archs[1].config.l2.capacity_bytes > archs[0].config.l2.capacity_bytes);
    }

    #[test]
    fn sweep_runs_and_estimates_stay_accurate() {
        let archs = standard_archs();
        let row = sweep_benchmark("gzip", Scale::Train, 50_000, &archs);
        assert_eq!(row.cpi_err.len(), archs.len());
        for (i, e) in row.cpi_err.iter().enumerate() {
            assert!(*e < 0.06, "arch {}: CPI error {e}", archs[i].label);
        }
        assert!(row.best_pair_correct, "design ranking must be right");
        let table = render(&[row], &archs);
        assert!(table.contains("gzip"));
        assert!(table.contains("prefetch"));
    }
}
