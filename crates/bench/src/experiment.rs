//! Per-benchmark evaluation: runs both SimPoint schemes on all four
//! binaries of a program, simulates everything, and computes the
//! paper's metrics.

use cbsp_core::{
    relative_error, run_cross_binary, run_per_binary, speedup, speedup_error, weighted_cpi,
    weighted_cpi_with, weighted_metric, weighted_metric_with, CbspConfig, CrossBinaryResult,
    PerBinaryResult,
};
use cbsp_par::Pool;
use cbsp_program::{compile, workloads, Binary, CompileTarget, Input, Scale};
use cbsp_sim::{replay_fli_sliced, replay_marker_sliced, IntervalSim, MemoryConfig, SimStats};
use cbsp_simpoint::SimPointConfig;
use cbsp_store::{ArtifactStore, CachePolicy, Orchestrator, TraceCache};
use serde::{Deserialize, Serialize};

/// The four standard binaries, in paper order.
pub const BINARY_LABELS: [&str; 4] = ["32u", "32o", "64u", "64o"];

/// Binary-pair configurations of Figures 4 and 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pair {
    /// 32-bit unoptimized → 32-bit optimized (same platform, Fig 4).
    P32u32o,
    /// 64-bit unoptimized → 64-bit optimized (same platform, Fig 4).
    P64u64o,
    /// 32-bit unoptimized → 64-bit unoptimized (cross platform, Fig 5).
    P32u64u,
    /// 32-bit optimized → 64-bit optimized (cross platform, Fig 5).
    P32o64o,
}

impl Pair {
    /// All four pairs in figure order.
    pub const ALL: [Pair; 4] = [Pair::P32u32o, Pair::P64u64o, Pair::P32u64u, Pair::P32o64o];

    /// Indices into the `ALL_FOUR` binary order (`[32u, 32o, 64u, 64o]`).
    pub fn indices(self) -> (usize, usize) {
        match self {
            Pair::P32u32o => (0, 1),
            Pair::P64u64o => (2, 3),
            Pair::P32u64u => (0, 2),
            Pair::P32o64o => (1, 3),
        }
    }

    /// Label as used in the paper's figures, e.g. `"32u32o"`.
    pub fn label(self) -> &'static str {
        match self {
            Pair::P32u32o => "32u32o",
            Pair::P64u64o => "64u64o",
            Pair::P32u64u => "32u64u",
            Pair::P32o64o => "32o64o",
        }
    }
}

/// Per-binary measurements for one estimation scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemeEval {
    /// Simulation points chosen (k), per binary.
    pub num_points: [usize; 4],
    /// Estimated whole-program CPI, per binary.
    pub cpi_est: [f64; 4],
    /// Relative CPI error vs. the full simulation, per binary.
    pub cpi_err: [f64; 4],
    /// Estimated total cycles, per binary.
    pub cycles_est: [f64; 4],
}

impl SchemeEval {
    /// Mean CPI error across the four binaries (the bars of Figure 3).
    pub fn avg_cpi_err(&self) -> f64 {
        self.cpi_err.iter().sum::<f64>() / 4.0
    }

    /// Mean number of simulation points (the bars of Figure 1).
    pub fn avg_num_points(&self) -> f64 {
        self.num_points.iter().sum::<usize>() as f64 / 4.0
    }

    /// Estimated speedup for a binary pair.
    pub fn est_speedup(&self, pair: Pair) -> f64 {
        let (a, b) = pair.indices();
        speedup(self.cycles_est[a], self.cycles_est[b])
    }
}

/// One row of phase-bias detail (Tables 2 and 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseRow {
    /// Phase id (within its scheme/binary).
    pub phase: u32,
    /// Phase weight (fraction of instructions).
    pub weight: f64,
    /// True CPI: instruction-weighted CPI over all intervals of the
    /// phase.
    pub true_cpi: f64,
    /// CPI of the phase's simulation point.
    pub sp_cpi: f64,
}

impl PhaseRow {
    /// The paper's signed per-phase bias: `(true − sp) / true`.
    pub fn cpi_error(&self) -> f64 {
        if self.true_cpi == 0.0 {
            0.0
        } else {
            (self.true_cpi - self.sp_cpi) / self.true_cpi
        }
    }
}

/// Full evaluation of one benchmark at one scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkEval {
    /// Benchmark name.
    pub name: String,
    /// True whole-program stats per binary (`[32u, 32o, 64u, 64o]`).
    pub true_stats: [SimStats; 4],
    /// Classic per-binary SimPoint (FLI).
    pub fli: SchemeEval,
    /// Mappable cross-binary SimPoint (VLI).
    pub vli: SchemeEval,
    /// Average VLI interval size in instructions (averaged over the
    /// four binaries' mapped slicings — Figure 2).
    pub vli_avg_interval: f64,
    /// Largest mapped interval observed in any binary, in instructions
    /// (the tail Figure 2's averages hide).
    pub vli_max_interval: u64,
    /// Number of mappable points found.
    pub mappable_points: usize,
    /// Procedures recovered by the inlining analysis.
    pub recovered_procs: usize,
    /// Interval-size target used.
    pub interval_target: u64,
}

impl BenchmarkEval {
    /// True speedup of a binary pair (ratio of full-run cycles).
    pub fn true_speedup(&self, pair: Pair) -> f64 {
        let (a, b) = pair.indices();
        speedup(
            self.true_stats[a].cycles as f64,
            self.true_stats[b].cycles as f64,
        )
    }

    /// Speedup-estimation error of a scheme on a pair (Figures 4–5).
    pub fn speedup_err(&self, vli: bool, pair: Pair) -> f64 {
        let scheme = if vli { &self.vli } else { &self.fli };
        speedup_error(self.true_speedup(pair), scheme.est_speedup(pair))
    }
}

/// Phase-bias tables for one benchmark/binary-pair (Tables 2 and 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseBias {
    /// Benchmark name.
    pub name: String,
    /// The two binaries compared (indices into `ALL_FOUR` order).
    pub pair: Pair,
    /// Top phases under VLI, per binary of the pair: `vli[0]` and
    /// `vli[1]` are index-aligned (same phase ids — that is the point).
    pub vli: [Vec<PhaseRow>; 2],
    /// Top phases under FLI, per binary of the pair (independent phase
    /// ids per binary).
    pub fli: [Vec<PhaseRow>; 2],
}

/// Everything needed to evaluate one benchmark (kept so callers can
/// also inspect intermediate artifacts).
pub struct BenchmarkRun {
    /// The four compiled binaries.
    pub binaries: Vec<Binary>,
    /// The cross-binary pipeline output.
    pub cross: CrossBinaryResult,
    /// Per-binary FLI analyses.
    pub per_binary: Vec<PerBinaryResult>,
    /// Per-binary interval stats under the mapped (VLI) slicing.
    pub vli_interval_stats: Vec<Vec<IntervalSim>>,
    /// Per-binary interval stats under the FLI slicing.
    pub fli_interval_stats: Vec<Vec<IntervalSim>>,
    /// The evaluation summary.
    pub eval: BenchmarkEval,
}

/// Runs the complete evaluation of one benchmark.
///
/// # Panics
///
/// Panics if `name` is not in the workload suite.
pub fn evaluate_benchmark(
    name: &str,
    scale: Scale,
    interval_target: u64,
    mem: &MemoryConfig,
) -> BenchmarkRun {
    evaluate_benchmark_with(name, scale, interval_target, mem, None)
}

/// [`evaluate_benchmark`] with an optional artifact store: when given,
/// pipeline stages are served from / written to the store, so repeated
/// experiment runs (or runs sharing benchmarks) skip recomputation.
///
/// # Panics
///
/// Panics if `name` is not in the workload suite or the store fails.
pub fn evaluate_benchmark_with(
    name: &str,
    scale: Scale,
    interval_target: u64,
    mem: &MemoryConfig,
    store: Option<&ArtifactStore>,
) -> BenchmarkRun {
    evaluate_benchmark_pooled(name, scale, interval_target, mem, store, &Pool::auto())
}

/// [`evaluate_benchmark_with`] with explicit parallelism: compilation,
/// the cross-binary pipeline, the per-binary FLI analyses, and the
/// detailed simulations all fan out over `pool`. Results are
/// bit-identical at any pool size.
///
/// # Panics
///
/// Panics if `name` is not in the workload suite or the store fails.
pub fn evaluate_benchmark_pooled(
    name: &str,
    scale: Scale,
    interval_target: u64,
    mem: &MemoryConfig,
    store: Option<&ArtifactStore>,
    pool: &Pool,
) -> BenchmarkRun {
    let traces = TraceCache::new(store);
    evaluate_benchmark_cached(name, scale, interval_target, mem, store, &traces, pool)
}

/// [`evaluate_benchmark_pooled`] with an explicit [`TraceCache`]: each
/// `(binary, input)` pair is interpreted (and recorded) at most once
/// per cache; both detailed slicings are pool-parallel replays of the
/// recorded traces. Pass a cache without a persistent tier to keep
/// pipeline-stage caching while opting out of on-disk traces.
///
/// # Panics
///
/// Panics if `name` is not in the workload suite or the store fails.
pub fn evaluate_benchmark_cached(
    name: &str,
    scale: Scale,
    interval_target: u64,
    mem: &MemoryConfig,
    store: Option<&ArtifactStore>,
    traces: &TraceCache<'_>,
    pool: &Pool,
) -> BenchmarkRun {
    let workload = workloads::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let prog = workload.build(scale);
    let input = match scale {
        Scale::Test => Input::test(),
        Scale::Train => Input::train(),
        Scale::Reference => Input::reference(),
    };
    let binaries: Vec<Binary> = pool.run_indexed(CompileTarget::ALL_FOUR.len(), |i| {
        compile(&prog, CompileTarget::ALL_FOUR[i])
    });
    let bin_refs: Vec<&Binary> = binaries.iter().collect();

    // Cross-binary (VLI) pipeline; the pipeline's internal stages use
    // the same thread budget.
    let config = CbspConfig {
        interval_target,
        simpoint: SimPointConfig {
            threads: pool.threads(),
            ..SimPointConfig::default()
        },
        ..CbspConfig::default()
    };
    let cross = match store {
        Some(store) => {
            let orchestrator = Orchestrator::new(store, CachePolicy::ReadWrite);
            let description = format!("bench {name} scale={scale:?} interval={interval_target}");
            orchestrator
                .run_cross_binary(&bin_refs, &input, &config, &description)
                .expect("same-program binaries")
                .0
        }
        None => run_cross_binary(&bin_refs, &input, &config).expect("same-program binaries"),
    };

    // Per-binary (FLI) pipeline: four independent analyses side by
    // side, each clustering with its share of the thread budget.
    let fli_config = SimPointConfig {
        threads: pool.split(binaries.len()).threads(),
        ..config.simpoint
    };
    let per_binary: Vec<PerBinaryResult> = pool.run_indexed(binaries.len(), |b| {
        run_per_binary(&binaries[b], &input, interval_target, &fli_config)
    });

    // Detailed simulation, sliced both ways: record each binary's
    // event trace once (pool-parallel, served from the cache when this
    // `(binary, input)` was already interpreted), then replay it into
    // both sinks — eight pool-parallel replays instead of eight
    // re-interpretations.
    let event_traces = traces
        .get_or_record_all(&bin_refs, &input, pool)
        .expect("trace store usable");
    let sims = pool.run_indexed(binaries.len() * 2, |j| {
        let b = j / 2;
        if j % 2 == 0 {
            replay_marker_sliced(&event_traces[b], mem, &cross.boundaries[b])
                .expect("recorded trace decodes")
        } else {
            replay_fli_sliced(&event_traces[b], mem, interval_target)
                .expect("recorded trace decodes")
        }
    });
    drop(event_traces);
    let mut true_stats = [SimStats::default(); 4];
    let mut vli_interval_stats = Vec::with_capacity(4);
    let mut fli_interval_stats = Vec::with_capacity(4);
    let mut pairs = sims.into_iter();
    for slot in true_stats.iter_mut().take(binaries.len()) {
        let (full_v, mut ivs_v) = pairs.next().expect("marker replay per binary");
        let (full_f, ivs_f) = pairs.next().expect("fli replay per binary");
        ivs_v.resize(cross.interval_count(), IntervalSim::default());
        debug_assert_eq!(full_v, full_f, "slicing must not change the simulation");
        let _ = full_f;
        *slot = full_v;
        vli_interval_stats.push(ivs_v);
        fli_interval_stats.push(ivs_f);
    }

    // FLI estimates: per-binary points and weights.
    let mut fli = SchemeEval {
        num_points: [0; 4],
        cpi_est: [0.0; 4],
        cpi_err: [0.0; 4],
        cycles_est: [0.0; 4],
    };
    for b in 0..4 {
        let cpis: Vec<f64> = fli_interval_stats[b].iter().map(IntervalSim::cpi).collect();
        let est = weighted_cpi(&per_binary[b].simpoint.points, &cpis);
        fli.num_points[b] = per_binary[b].simpoint.points.len();
        fli.cpi_est[b] = est;
        fli.cpi_err[b] = relative_error(true_stats[b].cpi(), est);
        fli.cycles_est[b] = est * true_stats[b].instructions as f64;
    }

    // VLI estimates: shared points, per-binary recalculated weights.
    let mut vli = SchemeEval {
        num_points: [0; 4],
        cpi_est: [0.0; 4],
        cpi_err: [0.0; 4],
        cycles_est: [0.0; 4],
    };
    for b in 0..4 {
        let cpis: Vec<f64> = vli_interval_stats[b].iter().map(IntervalSim::cpi).collect();
        let est = weighted_cpi_with(&cross.simpoint.points, &cross.weights[b], &cpis);
        vli.num_points[b] = cross.simpoint.points.len();
        vli.cpi_est[b] = est;
        vli.cpi_err[b] = relative_error(true_stats[b].cpi(), est);
        vli.cycles_est[b] = est * true_stats[b].instructions as f64;
    }

    // Figure 2's metric: mapped interval sizes averaged over binaries.
    let vli_avg_interval = (0..4)
        .map(|b| {
            let n = cross.interval_count().max(1) as f64;
            true_stats[b].instructions as f64 / n
        })
        .sum::<f64>()
        / 4.0;
    let vli_max_interval = cross
        .interval_instrs
        .iter()
        .flat_map(|slices| slices.iter().copied())
        .max()
        .unwrap_or(0);

    let eval = BenchmarkEval {
        name: name.to_string(),
        true_stats,
        fli,
        vli,
        vli_avg_interval,
        vli_max_interval,
        mappable_points: cross.mappable.points.len(),
        recovered_procs: cross.recovered_procs,
        interval_target,
    };

    BenchmarkRun {
        binaries,
        cross,
        per_binary,
        vli_interval_stats,
        fli_interval_stats,
        eval,
    }
}

/// Estimation quality for a *second* architecture metric — DRAM
/// accesses per kilo-instruction — demonstrating that the same
/// simulation points extrapolate any metric the simulator reports
/// (paper §2.3 step 6: "CPI, miss rate, etc.").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MpkiEval {
    /// True DRAM MPKI per binary.
    pub true_mpki: [f64; 4],
    /// Per-binary SimPoint estimate.
    pub fli_est: [f64; 4],
    /// Cross-binary SimPoint estimate.
    pub vli_est: [f64; 4],
}

impl MpkiEval {
    /// Mean relative estimation error of a scheme across binaries.
    pub fn avg_err(&self, vli: bool) -> f64 {
        let est = if vli { &self.vli_est } else { &self.fli_est };
        (0..4)
            .map(|b| relative_error(self.true_mpki[b], est[b]))
            .sum::<f64>()
            / 4.0
    }
}

/// Computes the DRAM-MPKI extrapolation quality of a completed run.
pub fn mpki_eval(run: &BenchmarkRun) -> MpkiEval {
    let mut out = MpkiEval {
        true_mpki: [0.0; 4],
        fli_est: [0.0; 4],
        vli_est: [0.0; 4],
    };
    for b in 0..4 {
        out.true_mpki[b] = run.eval.true_stats[b].dram_mpki();
        let vli_vals: Vec<f64> = run.vli_interval_stats[b]
            .iter()
            .map(IntervalSim::dram_mpki)
            .collect();
        out.vli_est[b] =
            weighted_metric_with(&run.cross.simpoint.points, &run.cross.weights[b], &vli_vals);
        let fli_vals: Vec<f64> = run.fli_interval_stats[b]
            .iter()
            .map(IntervalSim::dram_mpki)
            .collect();
        out.fli_est[b] = weighted_metric(&run.per_binary[b].simpoint.points, &fli_vals);
    }
    out
}

/// Computes the phase-bias tables (Tables 2/3) for a binary pair of a
/// completed run. `top` limits the number of phases shown (the paper
/// shows 3).
pub fn phase_bias(run: &BenchmarkRun, pair: Pair, top: usize) -> PhaseBias {
    let (a, b) = pair.indices();

    // VLI: shared phases; rank by combined weight.
    let k = run.cross.weights[a].len();
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&x, &y| {
        let wx = run.cross.weights[a][x] + run.cross.weights[b][x];
        let wy = run.cross.weights[a][y] + run.cross.weights[b][y];
        wy.partial_cmp(&wx).expect("finite weights")
    });
    let vli_rows = |bi: usize| -> Vec<PhaseRow> {
        order
            .iter()
            .take(top)
            .filter_map(|&phase| {
                let pt = run.cross.simpoint.point_for_phase(phase as u32)?;
                let stats = &run.vli_interval_stats[bi];
                let mut cyc = 0.0;
                let mut ins = 0.0;
                for (i, &label) in run.cross.simpoint.labels.iter().enumerate() {
                    if label as usize == phase {
                        cyc += stats[i].cycles as f64;
                        ins += stats[i].instructions as f64;
                    }
                }
                Some(PhaseRow {
                    phase: phase as u32,
                    weight: run.cross.weights[bi][phase],
                    true_cpi: if ins > 0.0 { cyc / ins } else { 0.0 },
                    sp_cpi: stats[pt.interval].cpi(),
                })
            })
            .collect()
    };

    // FLI: independent phases per binary; rank by that binary's weights.
    let fli_rows = |bi: usize| -> Vec<PhaseRow> {
        let analysis = &run.per_binary[bi];
        let stats = &run.fli_interval_stats[bi];
        let mut pts = analysis.simpoint.points.clone();
        pts.sort_by(|x, y| y.weight.partial_cmp(&x.weight).expect("finite weights"));
        pts.iter()
            .take(top)
            .map(|pt| {
                let mut cyc = 0.0;
                let mut ins = 0.0;
                for (i, &label) in analysis.simpoint.labels.iter().enumerate() {
                    if label == pt.phase {
                        cyc += stats[i].cycles as f64;
                        ins += stats[i].instructions as f64;
                    }
                }
                PhaseRow {
                    phase: pt.phase,
                    weight: pt.weight,
                    true_cpi: if ins > 0.0 { cyc / ins } else { 0.0 },
                    sp_cpi: stats[pt.interval].cpi(),
                }
            })
            .collect()
    };

    PhaseBias {
        name: run.eval.name.clone(),
        pair,
        vli: [vli_rows(a), vli_rows(b)],
        fli: [fli_rows(a), fli_rows(b)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_cover_the_paper_configurations() {
        assert_eq!(Pair::ALL.len(), 4);
        assert_eq!(Pair::P32u32o.indices(), (0, 1));
        assert_eq!(Pair::P32o64o.label(), "32o64o");
    }

    #[test]
    fn evaluate_one_benchmark_end_to_end() {
        // Train scale: Test-scale runs are so short that the init phase
        // dominates the interval population and estimates get noisy.
        let run = evaluate_benchmark("gzip", Scale::Train, 20_000, &MemoryConfig::table1());
        let e = &run.eval;
        for b in 0..4 {
            assert!(e.true_stats[b].cpi() > 1.0, "binary {b} CPI");
            assert!(e.fli.cpi_est[b] > 0.0);
            assert!(e.vli.cpi_est[b] > 0.0);
            // Both schemes should be within 30% of truth even at the
            // tiny test scale.
            assert!(e.fli.cpi_err[b] < 0.3, "FLI err {}", e.fli.cpi_err[b]);
            assert!(e.vli.cpi_err[b] < 0.3, "VLI err {}", e.vli.cpi_err[b]);
        }
        // -O0 binaries are genuinely slower overall.
        assert!(e.true_speedup(Pair::P32u32o) > 1.5);
        assert!(e.mappable_points > 0);
    }

    #[test]
    fn phase_bias_tables_are_well_formed() {
        let run = evaluate_benchmark("apsi", Scale::Test, 20_000, &MemoryConfig::table1());
        let t = phase_bias(&run, Pair::P32o64o, 3);
        assert!(!t.vli[0].is_empty());
        assert_eq!(t.vli[0].len(), t.vli[1].len());
        // VLI rows are phase-aligned across the two binaries.
        for (x, y) in t.vli[0].iter().zip(&t.vli[1]) {
            assert_eq!(x.phase, y.phase);
        }
        for row in t.vli[0].iter().chain(&t.fli[0]) {
            assert!(row.weight > 0.0 && row.weight <= 1.0);
            assert!(row.true_cpi > 0.0);
            assert!(row.sp_cpi > 0.0);
        }
    }
}
