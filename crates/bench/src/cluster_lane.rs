//! Cluster lane of the perf baseline: warm throughput scaling across
//! 1 → 2 → 4 workers (the `cluster` section of `BENCH_simpoint.json`).
//!
//! ## What makes a cluster faster on one core
//!
//! This harness runs on machines as small as a single CPU, so the lane
//! deliberately does *not* measure compute parallelism. What a
//! `cbsp-cluster` fleet multiplies even on one core is **warm cache
//! capacity**: each worker owns a private FIFO result cache of
//! [`cbsp_serve::RESULT_CACHE_CAP`] pipeline results, and digest
//! routing partitions the request working set across those caches. The
//! lane therefore drives a working set *larger than one worker's
//! cache* (`digests` distinct intervals, default `2.5 ×` the cap):
//!
//! * 1 worker — the set thrashes its lone cache; most requests pay the
//!   store-backed recompute path;
//! * 2 workers — each shard holds about half the set; the caches begin
//!   to cover it;
//! * 4 workers — every shard's slice fits; nearly every request is a
//!   result-cache hit.
//!
//! Requests are issued in a different (deterministic) permutation each
//! round so FIFO eviction behaves like it does under real mixed load
//! rather than degenerate cyclic scanning.
//!
//! The 1-worker point is a plain single-process [`cbsp_serve::Server`]
//! — no router — so the lane also certifies the tentpole claim from
//! the outside: every response served through a router, at any fleet
//! size, must be byte-identical to single-process serving.
//!
//! ## Why each topology is primed and then restarted
//!
//! A `pipeline.run` response embeds the store hits/misses of the run
//! that *computed* the result, and those depend on what the store
//! already held — i.e. on which digest happened to arrive at that
//! store first. That history differs between a shared single-daemon
//! store and per-shard stores, so first-computation responses are not
//! comparable across topologies. The lane therefore runs each
//! topology twice: an untimed priming pass populates its stores, then
//! the topology is **restarted** over the warm stores and only the
//! second incarnation is measured. After the restart every
//! (re)computation runs against a fully-warm store, whose hit/miss
//! profile is a deterministic function of the request alone — so all
//! measured responses are byte-comparable across 1, 2, and 4 workers,
//! and every topology is measured in the same warm steady state.

use crate::serve_lane;
use cbsp_cluster::{Cluster, ClusterConfig};
use cbsp_program::Scale;
use cbsp_serve::{ServeConfig, Server, RESULT_CACHE_CAP};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};

/// One fleet size's warm measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterPoint {
    /// Worker count (1 = a single daemon, no router).
    pub workers: u64,
    /// Timed warm requests at this point.
    pub requests: u64,
    /// Warm requests served per second.
    pub warm_rps: f64,
    /// Mean warm request milliseconds.
    pub warm_mean_ms: f64,
    /// 95th-percentile warm request milliseconds.
    pub warm_p95_ms: f64,
}

/// Warm-capacity scaling across fleet sizes (the `cluster` field of
/// [`crate::PerfReport`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterLane {
    /// Benchmark measured.
    pub benchmark: String,
    /// Scale the run used (`test`/`train`/`ref`).
    pub scale: String,
    /// Distinct map-stage digests in the working set.
    pub digests: u64,
    /// Per-worker result-cache capacity the set is sized against.
    pub result_cache_cap: u64,
    /// Untimed priming rounds before measurement.
    pub warmup_rounds: u64,
    /// Timed rounds over the working set.
    pub timed_rounds: u64,
    /// Measurements at 1, 2, and 4 workers.
    pub points: Vec<ClusterPoint>,
    /// `true` — warm throughput never decreased as workers were added.
    pub monotone: bool,
    /// `true` — every routed response was byte-identical to the
    /// single-process daemon's response for the same request.
    pub results_identical: bool,
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Train => "train",
        Scale::Reference => "ref",
    }
}

/// One NDJSON client connection (the lane's load generator).
struct Lane {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Lane {
    fn connect(addr: SocketAddr) -> Lane {
        let stream = TcpStream::connect(addr).expect("connects");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(600)))
            .expect("timeout set");
        Lane {
            reader: BufReader::new(stream.try_clone().expect("stream clones")),
            writer: stream,
        }
    }

    fn request(&mut self, frame: &str) -> String {
        serve_lane::exchange_with_backoff(&mut self.writer, &mut self.reader, frame)
    }
}

/// A deterministic permutation of `0..n`, different per `round`
/// (splitmix-style mixing; no RNG dependency, identical on every run).
fn permutation(n: usize, round: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = round
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(0x2545_f491_4f6c_dd1d);
    let mut next = || {
        state = state.wrapping_mul(0xd120_2e4d_3b99_6f95).wrapping_add(1);
        (state >> 33) as usize
    };
    for i in (1..n).rev() {
        order.swap(i, next() % (i + 1));
    }
    order
}

/// Runs the full working set against `addr` for `rounds` rounds in
/// per-round permutations. Returns per-request latencies (ms) and the
/// elapsed seconds; records the first response seen per digest into
/// `responses` (or asserts byte-identity against what is already
/// there).
fn drive(
    addr: SocketAddr,
    frames: &[String],
    rounds: u64,
    round_base: u64,
    responses: &mut BTreeMap<usize, String>,
    identical: &mut bool,
) -> (Vec<f64>, f64) {
    let mut lane = Lane::connect(addr);
    let mut latencies_ms = Vec::with_capacity(frames.len() * rounds as usize);
    let started = Instant::now();
    for round in 0..rounds {
        for &digest in &permutation(frames.len(), round_base + round) {
            let t = Instant::now();
            let response = lane.request(&frames[digest]);
            latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
            assert!(
                response.contains(r#""ok":true"#),
                "cluster lane request failed: {response}"
            );
            match responses.get(&digest) {
                None => {
                    responses.insert(digest, response);
                }
                Some(reference) => *identical &= *reference == response,
            }
        }
    }
    (latencies_ms, started.elapsed().as_secs_f64())
}

/// One serving topology under measurement: a bare daemon (the
/// `workers == 1` reference) or a routed fleet.
enum Topology {
    Single(Server),
    Fleet(Cluster),
}

impl Topology {
    fn start(workers: u64, dir: &Path) -> Topology {
        if workers == 1 {
            Topology::Single(
                Server::start(ServeConfig {
                    addr: "127.0.0.1:0".to_string(),
                    cache_dir: dir.to_path_buf(),
                    default_timeout_ms: 600_000,
                    ..ServeConfig::default()
                })
                .expect("server starts"),
            )
        } else {
            Topology::Fleet(
                Cluster::start(ClusterConfig {
                    addr: "127.0.0.1:0".to_string(),
                    workers: workers as usize,
                    cache_dir: dir.to_path_buf(),
                    default_timeout_ms: 600_000,
                    ..ClusterConfig::default()
                })
                .expect("cluster starts"),
            )
        }
    }

    fn addr(&self) -> SocketAddr {
        match self {
            Topology::Single(server) => server.addr(),
            Topology::Fleet(cluster) => cluster.addr(),
        }
    }

    fn stop(self) {
        match self {
            Topology::Single(server) => {
                server.shutdown();
                server.wait().expect("server drains");
            }
            Topology::Fleet(cluster) => {
                cluster.shutdown();
                cluster.wait().expect("cluster drains");
            }
        }
    }
}

fn point(workers: u64, latencies_ms: &mut [f64], elapsed_s: f64) -> ClusterPoint {
    let requests = latencies_ms.len() as u64;
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let mean = latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64;
    let p95 =
        latencies_ms[((latencies_ms.len() as f64 * 0.95) as usize).min(latencies_ms.len() - 1)];
    ClusterPoint {
        workers,
        requests,
        warm_rps: requests as f64 / elapsed_s,
        warm_mean_ms: mean,
        warm_p95_ms: p95,
    }
}

/// Runs the cluster lane: the same working set of `digests` distinct
/// requests against a single daemon, a 2-worker cluster, and a
/// 4-worker cluster (each topology on a fresh store under
/// `cache_dir`), with `warmup_rounds` untimed priming rounds and
/// `timed_rounds` measured rounds per topology.
///
/// `cache_dir` is wiped first.
///
/// # Panics
///
/// Panics on any I/O or protocol failure, or if a request fails —
/// this is a measurement harness, not a library.
pub fn run_cluster_lane(
    name: &str,
    scale: Scale,
    base_interval: u64,
    digests: usize,
    warmup_rounds: u64,
    timed_rounds: u64,
    cache_dir: &Path,
) -> ClusterLane {
    let digests = digests.max(2);
    let warmup_rounds = warmup_rounds.max(1);
    let timed_rounds = timed_rounds.max(1);
    let _ = std::fs::remove_dir_all(cache_dir);
    let frames: Vec<String> = (0..digests as u64)
        .map(|i| {
            format!(
                r#"{{"id":"c","method":"pipeline.run","params":{{"benchmark":"{name}","scale":"{}","interval":{}}}}}"#,
                scale_name(scale),
                base_interval + i
            )
        })
        .collect();

    let mut responses: BTreeMap<usize, String> = BTreeMap::new();
    let mut identical = true;
    let mut points = Vec::new();

    for &workers in &[1u64, 2, 4] {
        let topo_dir = cache_dir.join(format!("w{workers}"));
        // Priming incarnation: populates this topology's stores. Its
        // responses carry history-dependent store-hit counts (see the
        // module docs), so nothing is recorded or compared.
        let primer = Topology::start(workers, &topo_dir);
        let mut scratch = BTreeMap::new();
        let mut scratch_identical = true;
        drive(
            primer.addr(),
            &frames,
            1,
            500,
            &mut scratch,
            &mut scratch_identical,
        );
        primer.stop();

        // Measured incarnation over the warm stores: every response is
        // now the deterministic warm variant, byte-comparable across
        // topologies.
        let topo = Topology::start(workers, &topo_dir);
        drive(
            topo.addr(),
            &frames,
            warmup_rounds,
            1_000,
            &mut responses,
            &mut identical,
        );
        let (mut lat, elapsed) = drive(
            topo.addr(),
            &frames,
            timed_rounds,
            2_000,
            &mut responses,
            &mut identical,
        );
        points.push(point(workers, &mut lat, elapsed));
        topo.stop();
    }

    let monotone = points.windows(2).all(|w| w[1].warm_rps >= w[0].warm_rps);
    ClusterLane {
        benchmark: name.to_string(),
        scale: scale_name(scale).to_string(),
        digests: digests as u64,
        result_cache_cap: RESULT_CACHE_CAP as u64,
        warmup_rounds,
        timed_rounds,
        points,
        monotone,
        results_identical: identical,
    }
}

/// Renders a cluster lane as an aligned text table.
pub fn render(lane: &ClusterLane) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Cluster lane — warm-capacity scaling, {} ({} scale), {} digests vs {} cached/worker\n",
        lane.benchmark, lane.scale, lane.digests, lane.result_cache_cap
    ));
    out.push_str(&format!(
        "{:<9} {:>10} {:>10} {:>13} {:>12}\n",
        "workers", "requests", "rps", "mean ms", "p95 ms"
    ));
    for p in &lane.points {
        out.push_str(&format!(
            "{:<9} {:>10} {:>10.1} {:>13.3} {:>12.3}\n",
            p.workers, p.requests, p.warm_rps, p.warm_mean_ms, p.warm_p95_ms
        ));
    }
    out.push_str(&format!(
        "throughput monotone 1 -> 2 -> 4: {}\nrouted responses byte-identical to single-process serving: {}\n",
        lane.monotone, lane.results_identical
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_lane_scales_and_stays_byte_identical() {
        let _guard = cbsp_trace::test_lock();
        let dir = std::env::temp_dir().join(format!("cbsp-cluster-lane-{}", std::process::id()));
        // A small working set keeps the test fast; it still exceeds
        // nothing, so only identity and structure are asserted here —
        // the committed baseline (larger set) is where monotonicity is
        // enforced, by cbsp-cluster-bench and the CI lifecycle job.
        let lane = run_cluster_lane("gzip", Scale::Test, 20_000, 4, 1, 1, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(lane.points.len(), 3);
        assert_eq!(
            lane.points.iter().map(|p| p.workers).collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
        for p in &lane.points {
            assert_eq!(p.requests, 4);
            assert!(p.warm_rps > 0.0);
        }
        assert!(
            lane.results_identical,
            "routed responses must be byte-identical to single-process serving"
        );
        let json = serde_json::to_string(&lane).expect("serializes");
        let back: ClusterLane = serde_json::from_str(&json).expect("round-trips");
        assert_eq!(back, lane);
        assert!(render(&lane).contains("monotone"));
    }

    #[test]
    fn permutations_differ_by_round_but_are_deterministic() {
        let a = permutation(16, 1);
        let b = permutation(16, 2);
        assert_eq!(a, permutation(16, 1));
        assert_ne!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }
}
