//! Suite-level experiment driver: evaluates every benchmark and
//! aggregates the data behind each figure.

use crate::estimators::{lane_rows, EstimatorLane};
use crate::experiment::{evaluate_benchmark_cached, BenchmarkEval, Pair};
use crate::fuzzy_lane::FuzzyLane;
use cbsp_par::Pool;
use cbsp_program::{workloads, Scale};
use cbsp_sim::MemoryConfig;
use cbsp_simpoint::EstimatorConfig;
use cbsp_store::{ArtifactStore, TraceCache};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Results for the whole suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteResults {
    /// Scale the suite ran at.
    pub scale: String,
    /// Interval-size target in instructions.
    pub interval_target: u64,
    /// Per-benchmark evaluations, in suite order.
    pub benchmarks: Vec<BenchmarkEval>,
    /// Estimator-lane head-to-head columns (empty unless the run asked
    /// for lanes); each lane's benchmarks align with `benchmarks`.
    pub estimators: Vec<EstimatorLane>,
    /// Fuzzy-mapping accuracy lane (`None` unless the run asked for
    /// it with `--fuzzy`); evaluated on its own marker-destroyed
    /// binary sets, so its benchmark list is independent of
    /// `benchmarks`. Absent from pre-fuzzy result files — the field
    /// deserializes to `None` when missing.
    pub fuzzy: Option<FuzzyLane>,
}

impl SuiteResults {
    /// Mean over benchmarks of a per-benchmark metric.
    pub fn average(&self, f: impl Fn(&BenchmarkEval) -> f64) -> f64 {
        if self.benchmarks.is_empty() {
            return 0.0;
        }
        self.benchmarks.iter().map(f).sum::<f64>() / self.benchmarks.len() as f64
    }

    /// Suite-average speedup error of a scheme on a pair.
    pub fn avg_speedup_err(&self, vli: bool, pair: Pair) -> f64 {
        self.average(|e| e.speedup_err(vli, pair))
    }
}

/// Runs the evaluation for `names` (or the full suite when empty),
/// spreading benchmarks over `threads` worker threads.
pub fn run_suite(
    names: &[String],
    scale: Scale,
    interval_target: u64,
    mem: &MemoryConfig,
    threads: usize,
) -> SuiteResults {
    run_suite_with(names, scale, interval_target, mem, threads, None)
}

/// [`run_suite`] with an optional shared artifact store: workers serve
/// pipeline stages from the store where possible and write what they
/// compute, so re-running an experiment (or overlapping benchmark
/// selections) reuses prior work.
pub fn run_suite_with(
    names: &[String],
    scale: Scale,
    interval_target: u64,
    mem: &MemoryConfig,
    threads: usize,
    store: Option<&ArtifactStore>,
) -> SuiteResults {
    run_suite_opts(
        names,
        scale,
        interval_target,
        mem,
        threads,
        store,
        true,
        &[],
    )
}

/// [`run_suite_with`] with the trace cache and estimator lanes made
/// explicit. When `trace_cache` is false, event traces are still
/// recorded once and replayed within each evaluation (the engine's
/// core mechanism) but are never persisted to — or served from — the
/// artifact store, so a fresh run re-interprets every binary even with
/// `--cache-dir` set. Each entry of `estimators` adds a head-to-head
/// lane to [`SuiteResults::estimators`], re-using every benchmark's
/// detailed simulations (only clustering reruns per lane).
#[allow(clippy::too_many_arguments)]
pub fn run_suite_opts(
    names: &[String],
    scale: Scale,
    interval_target: u64,
    mem: &MemoryConfig,
    threads: usize,
    store: Option<&ArtifactStore>,
    trace_cache: bool,
    estimators: &[EstimatorConfig],
) -> SuiteResults {
    let selected: Vec<&'static str> = if names.is_empty() {
        workloads::suite().iter().map(|w| w.name).collect()
    } else {
        names
            .iter()
            .map(|n| {
                workloads::by_name(n)
                    .unwrap_or_else(|| panic!("unknown benchmark {n}"))
                    .name
            })
            .collect()
    };

    // Split the thread budget: benchmarks fan out across the pool, and
    // each evaluation's inner stages (pipeline, clustering, detailed
    // sims) share the remainder, so `threads` bounds total parallelism.
    let budget = Pool::new(threads.max(1));
    let outer = Pool::new(budget.threads().min(selected.len().max(1)));
    let inner = budget.split(outer.threads());
    let trace_store = if trace_cache { store } else { None };
    let done = AtomicUsize::new(0);
    let evaluated = outer.run_indexed(selected.len(), |i| {
        let traces = TraceCache::new(trace_store);
        let run = evaluate_benchmark_cached(
            selected[i],
            scale,
            interval_target,
            mem,
            store,
            &traces,
            &inner,
        );
        let rows = lane_rows(&run, scale, interval_target, store, &inner, estimators);
        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
        eprintln!("  [{}/{}] {} done", finished, selected.len(), selected[i]);
        (run.eval, rows)
    });

    // Transpose per-benchmark lane rows into suite-ordered lane columns.
    let mut lanes: Vec<EstimatorLane> = estimators
        .iter()
        .map(|e| EstimatorLane {
            estimator: e.tag(),
            benchmarks: Vec::with_capacity(selected.len()),
        })
        .collect();
    let mut benchmarks = Vec::with_capacity(selected.len());
    for (eval, rows) in evaluated {
        benchmarks.push(eval);
        for (lane, row) in lanes.iter_mut().zip(rows) {
            lane.benchmarks.push(row);
        }
    }

    SuiteResults {
        scale: format!("{scale:?}"),
        interval_target,
        benchmarks,
        estimators: lanes,
        fuzzy: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_suite_runs_and_aggregates() {
        let names = vec!["gzip".to_string(), "swim".to_string()];
        let r = run_suite(&names, Scale::Test, 20_000, &MemoryConfig::table1(), 2);
        assert_eq!(r.benchmarks.len(), 2);
        assert_eq!(r.benchmarks[0].name, "gzip");
        assert_eq!(r.benchmarks[1].name, "swim");
        let avg = r.average(|e| e.vli.avg_cpi_err());
        assert!((0.0..0.5).contains(&avg));
        for pair in Pair::ALL {
            assert!(r.avg_speedup_err(true, pair).is_finite());
            assert!(r.avg_speedup_err(false, pair).is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        let _ = run_suite(
            &["nope".to_string()],
            Scale::Test,
            10_000,
            &MemoryConfig::table1(),
            1,
        );
    }
}
