//! Serve lane of the perf baseline: warm daemon latency vs a cold
//! one-shot pipeline run (the `serve` section of `BENCH_simpoint.json`).
//!
//! Measures the headline claim of the query daemon — that a warm
//! `cbsp-serve` process answers repeated `pipeline.run` requests from
//! its content-addressed store instead of recomputing — by timing:
//!
//! 1. **cold**: one full cross-binary pipeline run against an empty
//!    store, in-process. This is what a cold `cbsp cross` invocation
//!    does *minus* process startup and binary loading, so the measured
//!    speedup is a conservative lower bound on the real CLI gap.
//! 2. **warm**: repeated identical `pipeline.run` requests over TCP
//!    against a daemon sharing the now-populated store, timed
//!    per request end to end (serialize, loopback round trip, store
//!    lookups, response parse).
//!
//! The lane also re-checks determinism from the outside: every served
//! response must be byte-identical, and the served `result_hash` must
//! equal the content hash of the cold run's result.

use cbsp_core::CbspConfig;
use cbsp_program::{compile, workloads, Binary, CompileTarget, Input, Scale};
use cbsp_serve::{ServeConfig, Server};
use cbsp_simpoint::SimPointConfig;
use cbsp_store::{content_hash, ArtifactStore, CachePolicy, Orchestrator};
use serde::{Deserialize, Serialize, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::Instant;

/// Warm-daemon vs cold-pipeline comparison (the `serve` field of
/// [`crate::PerfReport`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeLane {
    /// Benchmark measured.
    pub benchmark: String,
    /// Scale the run used (`test`/`train`/`ref`).
    pub scale: String,
    /// Interval-size target in instructions.
    pub interval_target: u64,
    /// Number of timed warm requests.
    pub requests: u64,
    /// Cold full-pipeline milliseconds (empty store, in-process).
    pub cold_ms: f64,
    /// Mean warm request milliseconds (TCP round trip included).
    pub warm_mean_ms: f64,
    /// Median warm request milliseconds.
    pub warm_p50_ms: f64,
    /// 95th-percentile warm request milliseconds.
    pub warm_p95_ms: f64,
    /// Warm requests served per second.
    pub warm_rps: f64,
    /// `cold_ms / warm_mean_ms` — the acceptance gate wants ≥ 5.
    pub speedup: f64,
    /// `true` — every served response was byte-identical and its
    /// `result_hash` matched the cold run's content hash.
    pub results_identical: bool,
}

fn scale_parts(scale: Scale) -> (&'static str, Input) {
    match scale {
        Scale::Test => ("test", Input::test()),
        Scale::Train => ("train", Input::train()),
        Scale::Reference => ("ref", Input::reference()),
    }
}

/// Most attempts a single logical request may take before the lane
/// gives up on a daemon that keeps answering `overloaded`.
const MAX_OVERLOAD_RETRIES: u32 = 100;

/// Reads the server's `retry_after_ms` hint out of an `overloaded`
/// error frame (defaults to 25 ms when absent or malformed).
fn retry_after_hint_ms(frame: &str) -> u64 {
    let field = |v: &Value, key: &str| {
        v.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v.clone())
    };
    serde_json::parse(frame)
        .ok()
        .and_then(|v| field(&v, "error"))
        .and_then(|e| field(&e, "retry_after_ms"))
        .and_then(|v| match v {
            Value::UInt(ms) => Some(ms),
            _ => None,
        })
        .unwrap_or(25)
}

/// Sends one frame and reads one response, backing off and retrying
/// when the daemon answers `overloaded` instead of hot-looping against
/// an admission-bounded server. The sleep honors the server's
/// `retry_after_ms` hint plus a small deterministic jitter (derived
/// from the attempt number — benches must be reproducible, so no
/// entropy) to de-synchronize concurrent clients.
///
/// # Panics
///
/// Panics on I/O failure or if the daemon stays overloaded for
/// [`MAX_OVERLOAD_RETRIES`] attempts.
pub(crate) fn exchange_with_backoff(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    frame: &str,
) -> String {
    for attempt in 0..MAX_OVERLOAD_RETRIES {
        writer.write_all(frame.as_bytes()).expect("frame written");
        writer.write_all(b"\n").expect("newline written");
        let mut line = String::new();
        reader.read_line(&mut line).expect("response read");
        let response = line.trim_end().to_string();
        if !response.contains(r#""code":"overloaded""#) {
            return response;
        }
        let hint = retry_after_hint_ms(&response);
        let jitter = (u64::from(attempt).wrapping_mul(0x9e37_79b9) >> 16) % (hint / 2 + 1);
        std::thread::sleep(std::time::Duration::from_millis(hint + jitter));
    }
    panic!("daemon still overloaded after {MAX_OVERLOAD_RETRIES} attempts");
}

/// Extracts `"result_hash": "..."` from a served `pipeline.run`
/// response frame.
fn served_hash(frame: &str) -> Option<String> {
    let value = serde_json::parse(frame).ok()?;
    let field = |v: &Value, key: &str| {
        v.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v.clone())
    };
    match field(&field(&value, "result")?, "result_hash")? {
        Value::Str(hash) => Some(hash),
        _ => None,
    }
}

/// Runs the serve lane: cold pipeline into `cache_dir`, then a daemon
/// over the same store answering `requests` identical warm queries.
///
/// `cache_dir` is wiped first so the cold run really is cold.
///
/// # Panics
///
/// Panics if `name` is not in the workload suite, or on any I/O or
/// protocol failure — this is a measurement harness, not a library.
pub fn run_serve_lane(
    name: &str,
    scale: Scale,
    interval_target: u64,
    requests: usize,
    cache_dir: &Path,
) -> ServeLane {
    let workload = workloads::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let (scale_name, input) = scale_parts(scale);
    let requests = requests.max(1);
    let _ = std::fs::remove_dir_all(cache_dir);

    // Cold: full pipeline against an empty store, exactly what a first
    // `cbsp cross` pays (the run also populates the store the daemon
    // will serve from).
    let program = workload.build(scale);
    let binaries: Vec<Binary> = CompileTarget::ALL_FOUR
        .iter()
        .map(|&t| compile(&program, t))
        .collect();
    let refs: Vec<&Binary> = binaries.iter().collect();
    let config = CbspConfig {
        interval_target,
        simpoint: SimPointConfig {
            threads: std::thread::available_parallelism().map_or(2, |n| n.get()),
            ..SimPointConfig::default()
        },
        ..CbspConfig::default()
    };
    let cold_hash;
    let cold_ms;
    {
        let store = ArtifactStore::open(cache_dir).expect("cache dir opens");
        let orch = Orchestrator::new(&store, CachePolicy::ReadWrite);
        let t = Instant::now();
        let (cross, _report) = orch
            .run_cross_binary(&refs, &input, &config, &format!("bench: cold {name}"))
            .expect("cold pipeline runs");
        cold_ms = t.elapsed().as_secs_f64() * 1e3;
        cold_hash = content_hash(&cross);
    }

    // Warm: a daemon over the populated store, one connection, repeated
    // identical requests timed individually.
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_dir: cache_dir.to_path_buf(),
        ..ServeConfig::default()
    })
    .expect("server starts");
    let stream = TcpStream::connect(server.addr()).expect("connects");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("stream clones");
    let mut reader = BufReader::new(stream);
    let frame = format!(
        r#"{{"id":"w","method":"pipeline.run","params":{{"benchmark":"{name}","scale":"{scale_name}","interval":{interval_target}}}}}"#
    );

    let mut latencies_ms = Vec::with_capacity(requests);
    let mut first_response: Option<String> = None;
    let mut identical = true;
    let warm_start = Instant::now();
    for _ in 0..requests {
        let t = Instant::now();
        let response = exchange_with_backoff(&mut writer, &mut reader, &frame);
        latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
        assert!(
            response.contains(r#""ok":true"#),
            "warm request failed: {response}"
        );
        match &first_response {
            None => first_response = Some(response),
            Some(first) => identical &= *first == response,
        }
    }
    let warm_total_s = warm_start.elapsed().as_secs_f64();
    server.shutdown();
    server.wait().expect("server drains");

    let first = first_response.expect("at least one warm request");
    identical &= served_hash(&first).as_deref() == Some(cold_hash.as_str());

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let warm_mean_ms = latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64;
    let pick = |q: f64| {
        latencies_ms[((latencies_ms.len() as f64 * q) as usize).min(latencies_ms.len() - 1)]
    };
    ServeLane {
        benchmark: name.to_string(),
        scale: scale_name.to_string(),
        interval_target,
        requests: requests as u64,
        cold_ms,
        warm_mean_ms,
        warm_p50_ms: pick(0.50),
        warm_p95_ms: pick(0.95),
        warm_rps: requests as f64 / warm_total_s,
        speedup: if warm_mean_ms > 0.0 {
            cold_ms / warm_mean_ms
        } else {
            1.0
        },
        results_identical: identical,
    }
}

/// Renders a serve lane as an aligned text table.
pub fn render(lane: &ServeLane) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Serve lane — warm daemon vs cold pipeline, {} ({} scale, interval {}), {} requests\n",
        lane.benchmark, lane.scale, lane.interval_target, lane.requests
    ));
    out.push_str(&format!(
        "{:<22} {:>12}\n{:<22} {:>12.3}\n{:<22} {:>12.3}\n{:<22} {:>12.3}\n{:<22} {:>12.3}\n{:<22} {:>12.1}\n{:<22} {:>11.1}x\n",
        "metric", "value",
        "cold_ms", lane.cold_ms,
        "warm_mean_ms", lane.warm_mean_ms,
        "warm_p50_ms", lane.warm_p50_ms,
        "warm_p95_ms", lane.warm_p95_ms,
        "warm_rps", lane.warm_rps,
        "speedup", lane.speedup,
    ));
    out.push_str(&format!(
        "served responses byte-identical and hash-matched to cold run: {}\n",
        lane.results_identical
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_lane_measures_warm_speedup() {
        let _guard = cbsp_trace::test_lock();
        let dir = std::env::temp_dir().join(format!("cbsp-serve-lane-{}", std::process::id()));
        let lane = run_serve_lane("gzip", Scale::Test, 20_000, 4, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(lane.requests, 4);
        assert!(lane.cold_ms > 0.0);
        assert!(lane.warm_mean_ms > 0.0);
        assert!(
            lane.results_identical,
            "served results must match the cold run byte for byte"
        );
        assert!(
            lane.speedup > 1.0,
            "warm daemon should beat a cold pipeline ({lane:?})"
        );
        let text = render(&lane);
        assert!(text.contains("speedup"));
        let json = serde_json::to_string(&lane).expect("serializes");
        let back: ServeLane = serde_json::from_str(&json).expect("round-trips");
        assert_eq!(back, lane);
    }
}
