//! Ablation studies over the design choices DESIGN.md calls out:
//! interval size, cluster budget, projection dimensionality, BIC
//! threshold, representative policy, primary-binary choice, and the
//! value of inline recovery (via the compiler's
//! `preserve_inline_lines` switch, which makes recovery unnecessary).
//!
//! Each variant runs the full cross-binary pipeline on a benchmark
//! subset and reports: average CPI error, average cross-platform
//! speedup error, mappable point count, and the interval count — so
//! the sensitivity of the headline results to every knob is visible.

use cbsp_core::{
    relative_error, run_cross_binary, speedup, speedup_error, weighted_cpi_with, CbspConfig,
};
use cbsp_program::{compile_with, workloads, Binary, CompileOptions, CompileTarget, Input, Scale};
use cbsp_sim::{replay_marker_sliced, IntervalSim, MemoryConfig};
use cbsp_simpoint::{RepresentativePolicy, SimPointConfig};
use cbsp_store::TraceCache;
use std::fmt::Write as _;

/// One ablation variant: a label plus the knobs it changes.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Row label.
    pub label: String,
    /// Pipeline configuration.
    pub config: CbspConfig,
    /// Compiler options (all four binaries).
    pub compile: CompileOptions,
}

impl Variant {
    fn new(label: &str, config: CbspConfig) -> Self {
        Variant {
            label: label.to_string(),
            config,
            compile: CompileOptions::default(),
        }
    }
}

/// The standard variant grid around a baseline interval target.
pub fn standard_variants(base_interval: u64) -> Vec<Variant> {
    let base = CbspConfig {
        interval_target: base_interval,
        ..CbspConfig::default()
    };
    let mut variants = vec![Variant::new("baseline", base)];

    for target in [base_interval / 2, base_interval * 2] {
        variants.push(Variant::new(
            &format!("interval={}k", target / 1000),
            CbspConfig {
                interval_target: target,
                ..base
            },
        ));
    }
    for max_k in [5usize, 20] {
        variants.push(Variant::new(
            &format!("max_k={max_k}"),
            CbspConfig {
                simpoint: SimPointConfig {
                    max_k,
                    ..base.simpoint
                },
                ..base
            },
        ));
    }
    for dims in [4usize, 64] {
        variants.push(Variant::new(
            &format!("proj_dims={dims}"),
            CbspConfig {
                simpoint: SimPointConfig {
                    projection_dims: dims,
                    ..base.simpoint
                },
                ..base
            },
        ));
    }
    for theta in [0.7f64, 1.0] {
        variants.push(Variant::new(
            &format!("bic_theta={theta}"),
            CbspConfig {
                simpoint: SimPointConfig {
                    bic_threshold: theta,
                    ..base.simpoint
                },
                ..base
            },
        ));
    }
    variants.push(Variant::new(
        "early_points(0.3)",
        CbspConfig {
            simpoint: SimPointConfig {
                representative: RepresentativePolicy::Earliest { tolerance: 0.3 },
                ..base.simpoint
            },
            ..base
        },
    ));
    variants.push(Variant::new(
        "primary=32o",
        CbspConfig { primary: 1, ..base },
    ));
    let mut inline_lines = Variant::new("inline_debug_lines", base);
    inline_lines.compile = CompileOptions {
        preserve_inline_lines: true,
        ..CompileOptions::default()
    };
    variants.push(inline_lines);
    variants
}

/// Aggregate result of one variant over the benchmark subset.
#[derive(Debug, Clone)]
pub struct VariantResult {
    /// Row label.
    pub label: String,
    /// Mean VLI CPI error across benchmarks × binaries.
    pub cpi_err: f64,
    /// Mean cross-platform (32u→64u) speedup error.
    pub speedup_err: f64,
    /// Mean mappable point count.
    pub mappable_points: f64,
    /// Mean interval count.
    pub intervals: f64,
    /// Mean simulation points (k).
    pub k: f64,
}

/// Evaluates one variant on one benchmark, returning
/// `(cpi errors per binary, speedup error, mappable, intervals, k)`.
fn evaluate_variant(
    name: &str,
    scale: Scale,
    variant: &Variant,
    mem: &MemoryConfig,
    traces: &TraceCache<'_>,
) -> ([f64; 4], f64, usize, usize, usize) {
    let prog = workloads::by_name(name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"))
        .build(scale);
    let input = match scale {
        Scale::Test => Input::test(),
        Scale::Train => Input::train(),
        Scale::Reference => Input::reference(),
    };
    let binaries: Vec<Binary> = CompileTarget::ALL_FOUR
        .iter()
        .map(|&t| compile_with(&prog, t, variant.compile))
        .collect();
    let result = run_cross_binary(
        &binaries.iter().collect::<Vec<_>>(),
        &input,
        &variant.config,
    )
    .expect("pipeline succeeds");

    let mut cpi_err = [0.0f64; 4];
    let mut cycles = [0.0f64; 4];
    let mut true_cycles = [0.0f64; 4];
    for (b, bin) in binaries.iter().enumerate() {
        let trace = traces
            .get_or_record(bin, &input)
            .expect("in-memory trace cache is infallible");
        let (full, mut ivs) = replay_marker_sliced(&trace, mem, &result.boundaries[b])
            .expect("recorded trace decodes");
        ivs.resize(result.interval_count(), IntervalSim::default());
        let cpis: Vec<f64> = ivs.iter().map(IntervalSim::cpi).collect();
        let est = weighted_cpi_with(&result.simpoint.points, &result.weights[b], &cpis);
        cpi_err[b] = relative_error(full.cpi(), est);
        cycles[b] = est * full.instructions as f64;
        true_cycles[b] = full.cycles as f64;
    }
    let sp_err = speedup_error(
        speedup(true_cycles[0], true_cycles[2]),
        speedup(cycles[0], cycles[2]),
    );
    (
        cpi_err,
        sp_err,
        result.mappable.points.len(),
        result.interval_count(),
        result.simpoint.k,
    )
}

/// Runs every variant over `names`, averaging the metrics.
pub fn run_ablations(
    names: &[&str],
    scale: Scale,
    base_interval: u64,
    mem: &MemoryConfig,
) -> Vec<VariantResult> {
    let variants = standard_variants(base_interval);
    let mut acc = vec![(0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64); variants.len()];
    for name in names {
        // One in-memory trace cache per benchmark: traces are keyed by
        // binary content, so every variant that compiles the same four
        // binaries (all but `inline_debug_lines`) replays the recording
        // the first variant made instead of re-interpreting.
        let traces = TraceCache::in_memory();
        for (vi, variant) in variants.iter().enumerate() {
            let (cpi_err, sp_err, mappable, intervals, k) =
                evaluate_variant(name, scale, variant, mem, &traces);
            let a = &mut acc[vi];
            a.0 += cpi_err.iter().sum::<f64>() / 4.0;
            a.1 += sp_err;
            a.2 += mappable as f64;
            a.3 += intervals as f64;
            a.4 += k as f64;
        }
    }
    let n = names.len() as f64;
    variants
        .iter()
        .zip(acc)
        .map(|(variant, (cpi, sp, mp, iv, kk))| VariantResult {
            label: variant.label.clone(),
            cpi_err: cpi / n,
            speedup_err: sp / n,
            mappable_points: mp / n,
            intervals: iv / n,
            k: kk / n,
        })
        .collect()
}

/// Renders the ablation table.
pub fn render(results: &[VariantResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Ablation: mappable SimPoint sensitivity (averages over the subset)\n\
         {:<20} {:>9} {:>12} {:>10} {:>10} {:>6}",
        "variant", "CPI err", "speedup err", "mappable", "intervals", "k"
    );
    for r in results {
        let _ = writeln!(
            s,
            "{:<20} {:>8.2}% {:>11.2}% {:>10.1} {:>10.1} {:>6.1}",
            r.label,
            100.0 * r.cpi_err,
            100.0 * r.speedup_err,
            r.mappable_points,
            r.intervals,
            r.k
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_grid_covers_every_knob() {
        let vs = standard_variants(100_000);
        let labels: Vec<&str> = vs.iter().map(|v| v.label.as_str()).collect();
        assert!(labels.contains(&"baseline"));
        assert!(labels.iter().any(|l| l.starts_with("interval=")));
        assert!(labels.iter().any(|l| l.starts_with("max_k=")));
        assert!(labels.iter().any(|l| l.starts_with("proj_dims=")));
        assert!(labels.iter().any(|l| l.starts_with("bic_theta=")));
        assert!(labels.contains(&"early_points(0.3)"));
        assert!(labels.contains(&"primary=32o"));
        assert!(labels.contains(&"inline_debug_lines"));
        assert!(vs.len() >= 10);
    }

    #[test]
    fn ablations_run_on_a_small_subset() {
        let results = run_ablations(&["gzip"], Scale::Test, 20_000, &MemoryConfig::table1());
        assert_eq!(results.len(), standard_variants(20_000).len());
        for r in &results {
            assert!(r.cpi_err.is_finite() && r.cpi_err >= 0.0);
            assert!(r.k >= 1.0);
        }
        let table = render(&results);
        assert!(table.contains("baseline"));
    }

    #[test]
    fn preserving_inline_lines_increases_mappable_points() {
        // With inline debug lines preserved, fma3d's inlined loops match
        // directly — at least as many mappable points as the baseline,
        // found without the recovery pass.
        let base = Variant::new(
            "base",
            CbspConfig {
                interval_target: 20_000,
                ..CbspConfig::default()
            },
        );
        let mut keep = base.clone();
        keep.compile = CompileOptions {
            preserve_inline_lines: true,
            ..CompileOptions::default()
        };
        let mem = MemoryConfig::table1();
        let traces = TraceCache::in_memory();
        let (_, _, base_points, _, _) =
            evaluate_variant("fma3d", Scale::Test, &base, &mem, &traces);
        let (_, _, keep_points, _, _) =
            evaluate_variant("fma3d", Scale::Test, &keep, &mem, &traces);
        assert!(
            keep_points >= base_points,
            "lines preserved: {keep_points} < baseline {base_points}"
        );
    }
}
