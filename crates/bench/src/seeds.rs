//! Seed-stability study: SimPoint is a randomized analysis (projection
//! matrix, k-means++ seeding), so its estimates vary run to run unless
//! the seed is pinned. This study quantifies that variation for the
//! cross-binary scheme — the spread of CPI and speedup estimates over
//! several master seeds — showing the conclusions do not hinge on a
//! lucky seed.

use cbsp_core::{run_cross_binary, weighted_cpi_with, CbspConfig};
use cbsp_program::{compile, workloads, Binary, CompileTarget, Input, Scale};
use cbsp_sim::{replay_marker_sliced, IntervalSim, MemoryConfig};
use cbsp_simpoint::SimPointConfig;
use cbsp_store::TraceCache;
use std::fmt::Write as _;

/// Stability of one benchmark's estimates across seeds.
#[derive(Debug, Clone)]
pub struct SeedRow {
    /// Benchmark name.
    pub name: String,
    /// Seeds evaluated.
    pub seeds: usize,
    /// True 32u→64u speedup.
    pub true_speedup: f64,
    /// Per-seed estimated speedups.
    pub est_speedups: Vec<f64>,
    /// Per-seed mean CPI error across the four binaries.
    pub cpi_errs: Vec<f64>,
}

impl SeedRow {
    /// Largest deviation of any seed's speedup estimate from truth.
    pub fn worst_speedup_err(&self) -> f64 {
        self.est_speedups
            .iter()
            .map(|e| ((self.true_speedup - e) / self.true_speedup).abs())
            .fold(0.0, f64::max)
    }

    /// Spread (max − min) of the speedup estimates across seeds.
    pub fn speedup_spread(&self) -> f64 {
        let min = self
            .est_speedups
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let max = self
            .est_speedups
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        max - min
    }

    /// Worst per-seed mean CPI error.
    pub fn worst_cpi_err(&self) -> f64 {
        self.cpi_errs.iter().copied().fold(0.0, f64::max)
    }
}

/// Evaluates one benchmark under `seeds` different SimPoint master
/// seeds (profiling and simulation are deterministic; only the
/// clustering randomness varies).
pub fn seed_stability(name: &str, scale: Scale, interval_target: u64, seeds: usize) -> SeedRow {
    let prog = workloads::by_name(name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"))
        .build(scale);
    let input = match scale {
        Scale::Test => Input::test(),
        Scale::Train => Input::train(),
        Scale::Reference => Input::reference(),
    };
    let binaries: Vec<Binary> = CompileTarget::ALL_FOUR
        .iter()
        .map(|&t| compile(&prog, t))
        .collect();
    let mem = MemoryConfig::table1();
    // Only the clustering seed varies between runs — the binaries and
    // input do not — so each binary is interpreted once and every
    // per-seed detailed simulation is a replay of that recording.
    let traces = TraceCache::in_memory();

    let mut est_speedups = Vec::with_capacity(seeds);
    let mut cpi_errs = Vec::with_capacity(seeds);
    let mut true_speedup = 0.0;
    for s in 0..seeds {
        let config = CbspConfig {
            interval_target,
            simpoint: SimPointConfig {
                seed: 0xBA5E_0000 + s as u64,
                ..SimPointConfig::default()
            },
            ..CbspConfig::default()
        };
        let result = run_cross_binary(&binaries.iter().collect::<Vec<_>>(), &input, &config)
            .expect("pipeline succeeds");
        let mut est_cycles = [0.0f64; 4];
        let mut true_cycles = [0.0f64; 4];
        let mut err = 0.0;
        for (b, bin) in binaries.iter().enumerate() {
            let trace = traces
                .get_or_record(bin, &input)
                .expect("in-memory trace cache is infallible");
            let (full, mut ivs) = replay_marker_sliced(&trace, &mem, &result.boundaries[b])
                .expect("recorded trace decodes");
            ivs.resize(result.interval_count(), IntervalSim::default());
            let cpis: Vec<f64> = ivs.iter().map(IntervalSim::cpi).collect();
            let est = weighted_cpi_with(&result.simpoint.points, &result.weights[b], &cpis);
            est_cycles[b] = est * full.instructions as f64;
            true_cycles[b] = full.cycles as f64;
            err += (full.cpi() - est).abs() / full.cpi();
        }
        true_speedup = true_cycles[0] / true_cycles[2];
        est_speedups.push(est_cycles[0] / est_cycles[2]);
        cpi_errs.push(err / 4.0);
    }
    SeedRow {
        name: name.to_string(),
        seeds,
        true_speedup,
        est_speedups,
        cpi_errs,
    }
}

/// Renders the stability table.
pub fn render(rows: &[SeedRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Seed stability (mappable SimPoint, {} seeds per benchmark)\n\
         {:<10} {:>12} {:>14} {:>14} {:>14}",
        rows.first().map_or(0, |r| r.seeds),
        "benchmark",
        "true 32u64u",
        "worst sp err",
        "sp spread",
        "worst CPI err"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10} {:>11.3}x {:>13.2}% {:>13.4} {:>13.2}%",
            r.name,
            r.true_speedup,
            100.0 * r.worst_speedup_err(),
            r.speedup_spread(),
            100.0 * r.worst_cpi_err()
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_are_stable_across_seeds() {
        let row = seed_stability("gzip", Scale::Train, 50_000, 3);
        assert_eq!(row.est_speedups.len(), 3);
        assert!(
            row.worst_speedup_err() < 0.05,
            "worst seed speedup err {}",
            row.worst_speedup_err()
        );
        assert!(
            row.speedup_spread() < 0.1 * row.true_speedup,
            "spread {} vs true {}",
            row.speedup_spread(),
            row.true_speedup
        );
    }
}
