//! Fuzzy-mapping accuracy lane: the marker-loss scenario as a gated
//! experiment.
//!
//! Every benchmark in this lane is evaluated on the *applu set*
//! (paper §5.1): two unoptimized binaries compiled normally plus two
//! optimized siblings compiled with
//! [`CompileOptions::marker_destroying`] — aggressive inlining and
//! unconditional loop splitting, which erase almost every mappable
//! marker. The exact map stage cannot place simulation points in the
//! destroyed binaries, so this lane exercises the similarity fallback
//! ([`FuzzyConfig`]) end to end: run the fuzzy pipeline, replay each
//! binary's mapped region file, and compare the extrapolated CPI
//! against a full detailed simulation.
//!
//! The lane rides along with `experiments accuracy-gate --fuzzy`,
//! where it is gated two ways (see [`crate::accuracy_gate`]):
//!
//! * an **absolute floor** — at least [`MAPPED_FLOOR`] of each
//!   benchmark's simulation points must map (exactly or fuzzily); and
//! * a **looser CPI-error bound** — per-benchmark CPI error may
//!   degrade vs the committed reference by up to
//!   [`FUZZY_SLACK_MULTIPLIER`]× the exact lanes' slack, because
//!   similarity-matched windows are approximations of regions the
//!   target binary no longer delimits.

use cbsp_core::fuzzy::{mapping_stats, FuzzyConfig};
use cbsp_core::{relative_error, run_cross_binary, CbspConfig};
use cbsp_par::Pool;
use cbsp_program::{
    compile, compile_with, workloads, Binary, CompileOptions, CompileTarget, Input, Scale,
};
use cbsp_sim::{estimate_cpi_from_regions, simulate_full, simulate_regions, MemoryConfig};
use cbsp_simpoint::SimPointConfig;
use serde::{Deserialize, Serialize};

/// Default benchmark subset for the lane: the paper's marker-loss
/// example (`applu`) plus the workloads the fuzzy end-to-end tests
/// exercise, spanning loop-heavy FP and branchy integer codes.
pub const FUZZY_BENCHMARKS: [&str; 5] = ["applu", "art", "gzip", "mcf", "swim"];

/// Minimum fraction of simulation points each benchmark must map
/// (exactly or fuzzily) for the gate to pass — the ≥ 80% bar from
/// ROADMAP item 4.
pub const MAPPED_FLOOR: f64 = 0.8;

/// How much looser the fuzzy lane's CPI-error slack is than the exact
/// lanes': `--tolerance 0.02` gates fuzzy CPI error at 0.10 absolute.
pub const FUZZY_SLACK_MULTIPLIER: f64 = 5.0;

/// One benchmark's fuzzy-lane evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzyBenchmark {
    /// Benchmark name.
    pub name: String,
    /// Simulation-point placements that translated exactly, summed
    /// over the four binaries.
    pub exact: usize,
    /// Placements recovered by similarity matching.
    pub fuzzy: usize,
    /// Placements below the acceptance threshold (dropped, weight
    /// renormalized over the rest).
    pub unmapped: usize,
    /// Mean cosine confidence over the fuzzy placements (0 when none).
    pub mean_confidence: f64,
    /// `(exact + fuzzy) / total` placements.
    pub mapped_fraction: f64,
    /// Whole-program CPI from full detailed simulation, per binary.
    pub true_cpi: [f64; 4],
    /// CPI extrapolated from the mapped region file, per binary.
    pub est_cpi: [f64; 4],
    /// Relative CPI error, per binary.
    pub cpi_err: [f64; 4],
}

impl FuzzyBenchmark {
    /// Mean relative CPI error across the four binaries.
    pub fn avg_cpi_err(&self) -> f64 {
        self.cpi_err.iter().sum::<f64>() / 4.0
    }
}

/// The whole lane: one [`FuzzyBenchmark`] per evaluated benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzyLane {
    /// Acceptance threshold the lane ran at.
    pub threshold: f64,
    /// Per-benchmark rows, in run order.
    pub benchmarks: Vec<FuzzyBenchmark>,
}

/// The applu set for `name`: normally-compiled unoptimized binaries
/// plus marker-destroyed optimized siblings. The normal siblings keep
/// the pairwise marker union fine-grained, so the destroyed binaries
/// genuinely cannot translate most boundaries and must fall back to
/// similarity matching.
///
/// # Panics
///
/// Panics if `name` is not in the workload suite.
pub fn destroyed_binaries(name: &str, scale: Scale) -> Vec<Binary> {
    let program = workloads::by_name(name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"))
        .build(scale);
    let destroy = CompileOptions::marker_destroying();
    vec![
        compile(&program, CompileTarget::W32_O0),
        compile(&program, CompileTarget::W64_O0),
        compile_with(&program, CompileTarget::W32_O2, destroy),
        compile_with(&program, CompileTarget::W64_O2, destroy),
    ]
}

/// Evaluates one benchmark on its applu set: fuzzy pipeline, mapped
/// region replay per binary, CPI error vs full simulation.
///
/// # Panics
///
/// Panics if `name` is not in the workload suite.
pub fn fuzzy_benchmark(
    name: &str,
    scale: Scale,
    interval_target: u64,
    threshold: f64,
    mem: &MemoryConfig,
    pool: &Pool,
) -> FuzzyBenchmark {
    let input = match scale {
        Scale::Test => Input::test(),
        Scale::Train => Input::train(),
        Scale::Reference => Input::reference(),
    };
    let binaries = destroyed_binaries(name, scale);
    let config = CbspConfig {
        interval_target,
        fuzzy: Some(FuzzyConfig { threshold }),
        simpoint: SimPointConfig {
            threads: pool.threads(),
            ..SimPointConfig::default()
        },
        ..CbspConfig::default()
    };
    let bin_refs: Vec<&Binary> = binaries.iter().collect();
    let result = run_cross_binary(&bin_refs, &input, &config).expect("same-program binaries");
    let stats = mapping_stats(&result.mappings);

    // Truth and estimate per binary: a full detailed simulation next
    // to a replay of the mapped (exact / fuzzy-window) region file.
    let sims = pool.run_indexed(binaries.len(), |b| {
        let truth = simulate_full(&binaries[b], &input, mem).cpi();
        let file = result.pinpoints_for(b, &binaries[b], &input);
        let regions = simulate_regions(&binaries[b], &input, mem, &file);
        (truth, estimate_cpi_from_regions(&regions))
    });
    let mut row = FuzzyBenchmark {
        name: name.to_string(),
        exact: stats.exact,
        fuzzy: stats.fuzzy,
        unmapped: stats.unmapped,
        mean_confidence: stats.mean_confidence,
        mapped_fraction: stats.mapped_fraction(),
        true_cpi: [0.0; 4],
        est_cpi: [0.0; 4],
        cpi_err: [0.0; 4],
    };
    for (b, (truth, est)) in sims.into_iter().enumerate() {
        row.true_cpi[b] = truth;
        row.est_cpi[b] = est;
        row.cpi_err[b] = relative_error(truth, est);
    }
    row
}

/// Runs the lane for `names` (or [`FUZZY_BENCHMARKS`] when empty),
/// spreading benchmarks over `threads` worker threads the same way
/// [`crate::run_suite`] does.
///
/// # Panics
///
/// Panics if any name is not in the workload suite.
pub fn run_fuzzy_lane(
    names: &[String],
    scale: Scale,
    interval_target: u64,
    threshold: f64,
    mem: &MemoryConfig,
    threads: usize,
) -> FuzzyLane {
    let selected: Vec<&str> = if names.is_empty() {
        FUZZY_BENCHMARKS.to_vec()
    } else {
        names.iter().map(String::as_str).collect()
    };
    let budget = Pool::new(threads.max(1));
    let outer = Pool::new(budget.threads().min(selected.len().max(1)));
    let inner = budget.split(outer.threads());
    let benchmarks = outer.run_indexed(selected.len(), |i| {
        let row = fuzzy_benchmark(selected[i], scale, interval_target, threshold, mem, &inner);
        eprintln!("  [fuzzy] {} done", selected[i]);
        row
    });
    FuzzyLane {
        threshold,
        benchmarks,
    }
}

/// Renders the lane as the table `experiments accuracy-gate --fuzzy`
/// prints.
pub fn render_fuzzy(lane: &FuzzyLane) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Fuzzy mapping lane (threshold {:.2}) — marker-destroyed optimized siblings\n",
        lane.threshold
    ));
    out.push_str(&format!(
        "{:<10} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8}\n",
        "benchmark", "exact", "fuzzy", "unmap", "conf", "mapped", "cpi_err"
    ));
    for b in &lane.benchmarks {
        out.push_str(&format!(
            "{:<10} {:>6} {:>6} {:>6} {:>6.3} {:>7.0}% {:>7.2}%\n",
            b.name,
            b.exact,
            b.fuzzy,
            b.unmapped,
            b.mean_confidence,
            100.0 * b.mapped_fraction,
            100.0 * b.avg_cpi_err()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_maps_destroyed_binaries_and_estimates_cpi() {
        let row = fuzzy_benchmark(
            "swim",
            Scale::Test,
            20_000,
            FuzzyConfig::DEFAULT_THRESHOLD,
            &MemoryConfig::table1(),
            &Pool::new(2),
        );
        assert!(row.fuzzy > 0, "destroyed set must exercise the fallback");
        assert!(
            row.mapped_fraction >= MAPPED_FLOOR,
            "mapped only {:.0}%",
            100.0 * row.mapped_fraction
        );
        for b in 0..4 {
            assert!(row.true_cpi[b] > 1.0, "binary {b} true CPI");
            assert!(row.est_cpi[b] > 0.0, "binary {b} estimate");
            assert!(row.cpi_err[b] < 0.5, "binary {b} err {}", row.cpi_err[b]);
        }
        let lane = FuzzyLane {
            threshold: FuzzyConfig::DEFAULT_THRESHOLD,
            benchmarks: vec![row],
        };
        let table = render_fuzzy(&lane);
        assert!(table.contains("swim"), "{table}");
        assert!(table.contains("cpi_err"), "{table}");
    }
}
