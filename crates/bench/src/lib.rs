//! # cbsp-bench — experiment harness
//!
//! Regenerates every table and figure of the Cross Binary Simulation
//! Points paper on the synthetic suite:
//!
//! | Artifact | Function |
//! |---|---|
//! | Table 1 (memory config) | [`report::table1`] |
//! | Figure 1 (#SimPoints) | [`report::fig1`] |
//! | Figure 2 (VLI interval size) | [`report::fig2`] |
//! | Figure 3 (CPI error) | [`report::fig3`] |
//! | Figure 4 (same-platform speedup error) | [`report::fig4`] |
//! | Figure 5 (cross-platform speedup error) | [`report::fig5`] |
//! | Tables 2/3 (phase bias, gcc & apsi) | [`report::phase_table`] |
//!
//! Run everything with the `experiments` binary:
//!
//! ```text
//! cargo run --release -p cbsp-bench --bin experiments -- all --scale ref
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod archsweep;
pub mod cluster_lane;
pub mod estimators;
pub mod experiment;
pub mod fuzzy_lane;
pub mod gate;
pub mod perf;
pub mod report;
pub mod seeds;
pub mod serve_lane;
pub mod softmark_study;
pub mod suite;
pub mod warmup;

pub use ablation::{run_ablations, standard_variants, Variant, VariantResult};
pub use archsweep::{standard_archs, sweep_benchmark, ArchSweepRow, ArchVariant};
pub use cluster_lane::{run_cluster_lane, ClusterLane, ClusterPoint};
pub use estimators::{lane_rows, render_lanes, EstimatorLane, LaneBenchmark};
pub use experiment::{
    evaluate_benchmark, evaluate_benchmark_cached, evaluate_benchmark_pooled,
    evaluate_benchmark_with, mpki_eval, phase_bias, BenchmarkEval, BenchmarkRun, MpkiEval, Pair,
    PhaseBias, PhaseRow, SchemeEval,
};
pub use fuzzy_lane::{
    destroyed_binaries, fuzzy_benchmark, render_fuzzy, run_fuzzy_lane, FuzzyBenchmark, FuzzyLane,
    FUZZY_BENCHMARKS, FUZZY_SLACK_MULTIPLIER, MAPPED_FLOOR,
};
pub use gate::{accuracy_gate, render_gate, GateFailure, GateReport};
pub use perf::{
    compare, render_compare, run_perf, CompareRow, PerfComparison, PerfReport, StageTime,
};
pub use seeds::{seed_stability, SeedRow};
pub use serve_lane::{run_serve_lane, ServeLane};
pub use softmark_study::{softmark_benchmark, SoftMarkRow};
pub use suite::{run_suite, run_suite_opts, run_suite_with, SuiteResults};
pub use warmup::{warmup_benchmark, WarmupRow};
