//! Accuracy regression gate: the current tree's suite results vs the
//! committed reference (`results_ref.json`).
//!
//! The engine is deterministic, so on an unmodified tree the current
//! run reproduces the reference exactly and the gate is trivially
//! green. The gate exists for *algorithm* changes: it allows any
//! improvement, and any degradation up to `slack` (absolute, in
//! relative-error units — `0.02` = two percentage points), per
//! benchmark and per metric. Checked metrics:
//!
//! * mean CPI error across the four binaries, VLI and FLI
//!   (the bars of Figure 3);
//! * speedup estimation error for each of the four binary pairs,
//!   VLI and FLI (Figures 4 and 5);
//! * when the current run evaluated estimator lanes, each lane's mean
//!   CPI error and confidence-interval containment, per benchmark,
//!   against that lane's committed reference column. A lane the
//!   current run computed but the reference lacks is a mismatch; extra
//!   reference columns are ignored so spot-checking a subset of lanes
//!   works just like `--benchmarks` subsets do;
//! * when the current run evaluated the fuzzy-mapping lane
//!   (`--fuzzy`), each benchmark is held to the absolute
//!   [`MAPPED_FLOOR`](crate::fuzzy_lane::MAPPED_FLOOR) on its mapped
//!   fraction, and its CPI error is gated against the reference at
//!   [`FUZZY_SLACK_MULTIPLIER`](crate::fuzzy_lane::FUZZY_SLACK_MULTIPLIER)×
//!   `slack` — similarity-matched windows are approximations, so the
//!   lane gets a documented looser bound instead of silently sharing
//!   the exact lanes' tolerance.

use crate::experiment::Pair;
use crate::fuzzy_lane::{FUZZY_SLACK_MULTIPLIER, MAPPED_FLOOR};
use crate::suite::SuiteResults;
use serde::{Deserialize, Serialize};

/// One failed check: a metric that degraded beyond the allowed slack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateFailure {
    /// Benchmark name.
    pub benchmark: String,
    /// Metric label, e.g. `"vli cpi_err"` or `"fli speedup_err 32u64u"`.
    pub metric: String,
    /// Reference value (fractional relative error).
    pub reference: f64,
    /// Current value.
    pub current: f64,
}

/// Result of [`accuracy_gate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateReport {
    /// Allowed absolute degradation per metric.
    pub slack: f64,
    /// Total number of checks performed.
    pub checks: usize,
    /// Checks that degraded beyond `slack`.
    pub failures: Vec<GateFailure>,
    /// Benchmarks present in only one of the two result sets, or a
    /// scale/interval mismatch — always a failure.
    pub mismatches: Vec<String>,
}

impl GateReport {
    /// `true` when every check passed and the result sets line up.
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && self.mismatches.is_empty()
    }
}

/// Compares `current` suite results against the committed `reference`,
/// failing any per-benchmark CPI-error or speedup-error metric that is
/// more than `slack` worse than the reference.
pub fn accuracy_gate(current: &SuiteResults, reference: &SuiteResults, slack: f64) -> GateReport {
    let mut report = GateReport {
        slack,
        checks: 0,
        failures: Vec::new(),
        mismatches: Vec::new(),
    };
    if current.scale != reference.scale {
        report.mismatches.push(format!(
            "scale mismatch: reference {:?}, current {:?}",
            reference.scale, current.scale
        ));
    }
    if current.interval_target != reference.interval_target {
        report.mismatches.push(format!(
            "interval mismatch: reference {}, current {}",
            reference.interval_target, current.interval_target
        ));
    }

    for r in &reference.benchmarks {
        let Some(c) = current.benchmarks.iter().find(|c| c.name == r.name) else {
            report
                .mismatches
                .push(format!("benchmark {:?} missing from current run", r.name));
            continue;
        };
        let mut check = |metric: String, ref_v: f64, cur_v: f64| {
            report.checks += 1;
            if cur_v > ref_v + slack {
                report.failures.push(GateFailure {
                    benchmark: r.name.clone(),
                    metric,
                    reference: ref_v,
                    current: cur_v,
                });
            }
        };
        check(
            "vli cpi_err".into(),
            r.vli.avg_cpi_err(),
            c.vli.avg_cpi_err(),
        );
        check(
            "fli cpi_err".into(),
            r.fli.avg_cpi_err(),
            c.fli.avg_cpi_err(),
        );
        for pair in Pair::ALL {
            check(
                format!("vli speedup_err {}", pair.label()),
                r.speedup_err(true, pair),
                c.speedup_err(true, pair),
            );
            check(
                format!("fli speedup_err {}", pair.label()),
                r.speedup_err(false, pair),
                c.speedup_err(false, pair),
            );
        }
    }
    for c in &current.benchmarks {
        if !reference.benchmarks.iter().any(|r| r.name == c.name) {
            report
                .mismatches
                .push(format!("benchmark {:?} missing from reference", c.name));
        }
    }

    // Estimator lanes: each lane the current run computed gates
    // against its own reference column.
    for cl in &current.estimators {
        let Some(rl) = reference
            .estimators
            .iter()
            .find(|r| r.estimator == cl.estimator)
        else {
            report.mismatches.push(format!(
                "estimator lane {:?} missing from reference",
                cl.estimator
            ));
            continue;
        };
        for cb in &cl.benchmarks {
            let Some(rb) = rl.benchmarks.iter().find(|r| r.name == cb.name) else {
                report.mismatches.push(format!(
                    "estimator {} benchmark {:?} missing from reference",
                    cl.estimator, cb.name
                ));
                continue;
            };
            report.checks += 1;
            if cb.avg_cpi_err() > rb.avg_cpi_err() + slack {
                report.failures.push(GateFailure {
                    benchmark: cb.name.clone(),
                    metric: format!("{} cpi_err", cl.estimator),
                    reference: rb.avg_cpi_err(),
                    current: cb.avg_cpi_err(),
                });
            }
            // Containment is gated as the fraction of binaries whose
            // interval *misses* the true CPI: any regression on a
            // 4-binary row is a 0.25 step, far beyond realistic slack.
            report.checks += 1;
            let miss = |b: &crate::estimators::LaneBenchmark| 1.0 - b.contains_count() as f64 / 4.0;
            if miss(cb) > miss(rb) + slack {
                report.failures.push(GateFailure {
                    benchmark: cb.name.clone(),
                    metric: format!("{} ci_miss", cl.estimator),
                    reference: miss(rb),
                    current: miss(cb),
                });
            }
        }
    }

    // Fuzzy-mapping lane: gated only when the current run computed it
    // (the reference may carry the column unused, like estimator
    // columns a spot-check skips).
    if let Some(cf) = &current.fuzzy {
        let fuzzy_slack = slack * FUZZY_SLACK_MULTIPLIER;
        let reference_lane = match &reference.fuzzy {
            Some(rf) if (rf.threshold - cf.threshold).abs() > 1e-12 => {
                report.mismatches.push(format!(
                    "fuzzy threshold mismatch: reference {}, current {}",
                    rf.threshold, cf.threshold
                ));
                None
            }
            Some(rf) => Some(rf),
            None => {
                report
                    .mismatches
                    .push("fuzzy lane missing from reference".to_string());
                None
            }
        };
        for cb in &cf.benchmarks {
            // The absolute floor holds with or without a reference
            // column: below it the fallback is not doing its job.
            report.checks += 1;
            if cb.mapped_fraction < MAPPED_FLOOR {
                report.failures.push(GateFailure {
                    benchmark: cb.name.clone(),
                    metric: "fuzzy mapped_fraction".to_string(),
                    reference: MAPPED_FLOOR,
                    current: cb.mapped_fraction,
                });
            }
            let Some(rb) =
                reference_lane.and_then(|rf| rf.benchmarks.iter().find(|r| r.name == cb.name))
            else {
                if reference_lane.is_some() {
                    report.mismatches.push(format!(
                        "fuzzy benchmark {:?} missing from reference",
                        cb.name
                    ));
                }
                continue;
            };
            report.checks += 1;
            if cb.avg_cpi_err() > rb.avg_cpi_err() + fuzzy_slack {
                report.failures.push(GateFailure {
                    benchmark: cb.name.clone(),
                    metric: "fuzzy cpi_err".to_string(),
                    reference: rb.avg_cpi_err(),
                    current: cb.avg_cpi_err(),
                });
            }
            // Mapped fraction may also regress vs the reference, but
            // never through the absolute floor checked above.
            report.checks += 1;
            if cb.mapped_fraction < rb.mapped_fraction - fuzzy_slack {
                report.failures.push(GateFailure {
                    benchmark: cb.name.clone(),
                    metric: "fuzzy mapped_fraction regression".to_string(),
                    reference: rb.mapped_fraction,
                    current: cb.mapped_fraction,
                });
            }
        }
    }
    report
}

/// Renders a gate report: every failure as a diff row, then a verdict.
pub fn render_gate(g: &GateReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Accuracy gate — {} checks vs reference, slack {:.2} (absolute)\n",
        g.checks, g.slack
    ));
    if !g.failures.is_empty() {
        out.push_str(&format!(
            "{:<10} {:<24} {:>10} {:>10} {:>8}\n",
            "benchmark", "metric", "reference", "current", "delta"
        ));
        for f in &g.failures {
            out.push_str(&format!(
                "{:<10} {:<24} {:>9.2}% {:>9.2}% {:>+7.2}%\n",
                f.benchmark,
                f.metric,
                100.0 * f.reference,
                100.0 * f.current,
                100.0 * (f.current - f.reference)
            ));
        }
    }
    for m in &g.mismatches {
        out.push_str(&format!("mismatch: {m}\n"));
    }
    out.push_str(if g.passed() {
        "accuracy gate: PASS\n"
    } else {
        "accuracy gate: FAIL\n"
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{BenchmarkEval, SchemeEval};
    use cbsp_sim::SimStats;

    fn scheme(cpi_err: f64, cycles: [f64; 4]) -> SchemeEval {
        SchemeEval {
            num_points: [3; 4],
            cpi_est: [1.0; 4],
            cpi_err: [cpi_err; 4],
            cycles_est: cycles,
        }
    }

    fn eval(name: &str, vli_err: f64, vli_cycles: [f64; 4]) -> BenchmarkEval {
        let stats = SimStats {
            instructions: 1_000,
            cycles: 2_000,
            ..SimStats::default()
        };
        BenchmarkEval {
            name: name.to_string(),
            true_stats: [stats; 4],
            fli: scheme(0.01, [2_000.0; 4]),
            vli: scheme(vli_err, vli_cycles),
            vli_avg_interval: 100_000.0,
            vli_max_interval: 200_000,
            mappable_points: 10,
            recovered_procs: 0,
            interval_target: 100_000,
        }
    }

    fn suite(benchmarks: Vec<BenchmarkEval>) -> SuiteResults {
        SuiteResults {
            scale: "Reference".into(),
            interval_target: 100_000,
            benchmarks,
            estimators: Vec::new(),
            fuzzy: None,
        }
    }

    fn fuzzy_lane(cpi_err: f64, mapped: f64) -> crate::fuzzy_lane::FuzzyLane {
        crate::fuzzy_lane::FuzzyLane {
            threshold: 0.6,
            benchmarks: vec![crate::fuzzy_lane::FuzzyBenchmark {
                name: "gzip".to_string(),
                exact: 18,
                fuzzy: 6,
                unmapped: 0,
                mean_confidence: 0.95,
                mapped_fraction: mapped,
                true_cpi: [1.5; 4],
                est_cpi: [1.5; 4],
                cpi_err: [cpi_err; 4],
            }],
        }
    }

    fn lane(tag: &str, cpi_err: f64, contains: bool) -> crate::estimators::EstimatorLane {
        crate::estimators::EstimatorLane {
            estimator: tag.to_string(),
            benchmarks: vec![crate::estimators::LaneBenchmark {
                name: "gzip".to_string(),
                points: 7,
                cpi_err: [cpi_err; 4],
                ci_half: [0.1; 4],
                ci_contains: [contains; 4],
            }],
        }
    }

    #[test]
    fn identical_results_pass() {
        let reference = suite(vec![eval("gzip", 0.02, [2_000.0; 4])]);
        let g = accuracy_gate(&reference.clone(), &reference, 0.02);
        assert!(g.passed(), "{}", render_gate(&g));
        assert_eq!(g.checks, 10, "2 cpi checks + 4 pairs x 2 schemes");
    }

    #[test]
    fn degradation_beyond_slack_fails_with_diff() {
        let reference = suite(vec![eval("gzip", 0.02, [2_000.0; 4])]);
        let current = suite(vec![eval("gzip", 0.09, [2_000.0; 4])]);
        let g = accuracy_gate(&current, &reference, 0.02);
        assert!(!g.passed());
        assert_eq!(g.failures.len(), 1);
        assert_eq!(g.failures[0].metric, "vli cpi_err");
        let text = render_gate(&g);
        assert!(text.contains("FAIL"), "{text}");
        assert!(text.contains("gzip"), "{text}");
    }

    #[test]
    fn degradation_within_slack_passes() {
        let reference = suite(vec![eval("gzip", 0.02, [2_000.0; 4])]);
        let current = suite(vec![eval("gzip", 0.03, [2_000.0; 4])]);
        assert!(accuracy_gate(&current, &reference, 0.02).passed());
    }

    #[test]
    fn speedup_error_regression_fails() {
        let reference = suite(vec![eval("gzip", 0.02, [2_000.0; 4])]);
        // True speedup of every pair is 1.0 (identical true cycles);
        // skewed cycle estimates put the estimated speedups far off.
        let current = suite(vec![eval(
            "gzip",
            0.02,
            [2_000.0, 4_000.0, 2_000.0, 2_000.0],
        )]);
        let g = accuracy_gate(&current, &reference, 0.02);
        assert!(!g.passed());
        assert!(g.failures.iter().any(|f| f.metric.contains("speedup_err")));
    }

    #[test]
    fn estimator_lane_regression_fails_and_identical_lanes_pass() {
        let mut reference = suite(vec![eval("gzip", 0.02, [2_000.0; 4])]);
        reference.estimators = vec![lane("stratified", 0.01, true)];
        let mut current = reference.clone();
        let g = accuracy_gate(&current, &reference, 0.02);
        assert!(g.passed(), "{}", render_gate(&g));
        assert_eq!(g.checks, 12, "10 benchmark checks + cpi_err + ci_miss");

        current.estimators = vec![lane("stratified", 0.08, true)];
        let g = accuracy_gate(&current, &reference, 0.02);
        assert!(!g.passed());
        assert_eq!(g.failures[0].metric, "stratified cpi_err");

        current.estimators = vec![lane("stratified", 0.01, false)];
        let g = accuracy_gate(&current, &reference, 0.02);
        assert!(!g.passed());
        assert_eq!(g.failures[0].metric, "stratified ci_miss");
    }

    #[test]
    fn lane_missing_from_reference_is_a_mismatch_but_extra_columns_are_not() {
        let mut reference = suite(vec![eval("gzip", 0.02, [2_000.0; 4])]);
        reference.estimators = vec![lane("bbv", 0.02, false), lane("stratified", 0.01, true)];

        // Current computed only one of the reference's two columns —
        // that is a legal subset.
        let mut current = reference.clone();
        current.estimators = vec![lane("stratified", 0.01, true)];
        assert!(accuracy_gate(&current, &reference, 0.02).passed());

        // Current computed a lane the reference has no column for.
        current.estimators = vec![lane("bbv+mav", 0.01, true)];
        let g = accuracy_gate(&current, &reference, 0.02);
        assert!(!g.passed());
        assert!(g.mismatches[0].contains("bbv+mav"), "{:?}", g.mismatches);
    }

    #[test]
    fn fuzzy_lane_gets_looser_slack_but_a_hard_mapped_floor() {
        let mut reference = suite(vec![eval("gzip", 0.02, [2_000.0; 4])]);
        reference.fuzzy = Some(fuzzy_lane(0.04, 1.0));
        let mut current = reference.clone();

        // Identical lanes pass; reference-only lanes are ignored when
        // the current run skipped --fuzzy.
        assert!(accuracy_gate(&current, &reference, 0.02).passed());
        current.fuzzy = None;
        assert!(accuracy_gate(&current, &reference, 0.02).passed());

        // CPI error within 5x slack passes, beyond it fails.
        current.fuzzy = Some(fuzzy_lane(0.13, 1.0));
        assert!(accuracy_gate(&current, &reference, 0.02).passed());
        current.fuzzy = Some(fuzzy_lane(0.15, 1.0));
        let g = accuracy_gate(&current, &reference, 0.02);
        assert!(!g.passed());
        assert_eq!(g.failures[0].metric, "fuzzy cpi_err");

        // The 80% mapped floor is absolute — even a reference that
        // also sat below it would not excuse the current run.
        current.fuzzy = Some(fuzzy_lane(0.04, 0.7));
        let g = accuracy_gate(&current, &reference, 0.02);
        assert!(!g.passed());
        assert_eq!(g.failures[0].metric, "fuzzy mapped_fraction");

        // A lane the reference lacks is a mismatch, as is a different
        // threshold (thresholds change what confidence means).
        reference.fuzzy = None;
        current.fuzzy = Some(fuzzy_lane(0.04, 1.0));
        let g = accuracy_gate(&current, &reference, 0.02);
        assert!(!g.passed());
        assert!(g.mismatches[0].contains("fuzzy lane"), "{:?}", g.mismatches);

        reference.fuzzy = Some(fuzzy_lane(0.04, 1.0));
        let mut shifted = fuzzy_lane(0.04, 1.0);
        shifted.threshold = 0.9;
        current.fuzzy = Some(shifted);
        let g = accuracy_gate(&current, &reference, 0.02);
        assert!(!g.passed());
        assert!(g.mismatches[0].contains("threshold"), "{:?}", g.mismatches);
    }

    #[test]
    fn missing_benchmark_and_config_mismatch_fail() {
        let reference = suite(vec![eval("gzip", 0.02, [2_000.0; 4])]);
        let current = suite(Vec::new());
        let g = accuracy_gate(&current, &reference, 0.02);
        assert!(!g.passed());
        assert!(g.mismatches[0].contains("gzip"));

        let mut current = suite(vec![eval("gzip", 0.02, [2_000.0; 4])]);
        current.interval_target = 50_000;
        assert!(!accuracy_gate(&current, &reference, 0.02).passed());
    }
}
