//! Warm-up study: how much of the sampled-simulation accuracy depends
//! on presenting each region with warmed cache state.
//!
//! The paper's evaluation (like the PinPoints flow it builds on)
//! simulates regions in context, i.e. with functionally-warmed caches.
//! At small region sizes, cold-starting each region instead inflates
//! its measured CPI by re-paying compulsory misses — this experiment
//! quantifies that error for both bound kinds, motivating the
//! functional-warming default of [`cbsp_sim::simulate_regions`].

use cbsp_core::{run_cross_binary, CbspConfig};
use cbsp_program::{compile, workloads, Binary, CompileTarget, Input, Scale};
use cbsp_sim::{
    estimate_cpi_from_regions, record_trace, replay_full, replay_regions_with, MemoryConfig, Warmup,
};
use std::fmt::Write as _;

/// Result row for one benchmark.
#[derive(Debug, Clone)]
pub struct WarmupRow {
    /// Benchmark name.
    pub name: String,
    /// True whole-program CPI (32o binary).
    pub true_cpi: f64,
    /// Estimate with functional warming.
    pub warm_est: f64,
    /// Estimate with cold-started regions.
    pub cold_est: f64,
}

impl WarmupRow {
    /// Relative error of the warm estimate.
    pub fn warm_err(&self) -> f64 {
        (self.true_cpi - self.warm_est).abs() / self.true_cpi
    }

    /// Relative error of the cold estimate.
    pub fn cold_err(&self) -> f64 {
        (self.true_cpi - self.cold_est).abs() / self.true_cpi
    }
}

/// Runs the study on one benchmark (the optimized 32-bit binary, using
/// cross-binary region files).
pub fn warmup_benchmark(name: &str, scale: Scale, interval_target: u64) -> WarmupRow {
    let prog = workloads::by_name(name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"))
        .build(scale);
    let input = match scale {
        Scale::Test => Input::test(),
        Scale::Train => Input::train(),
        Scale::Reference => Input::reference(),
    };
    let binaries: Vec<Binary> = CompileTarget::ALL_FOUR
        .iter()
        .map(|&t| compile(&prog, t))
        .collect();
    let config = CbspConfig {
        interval_target,
        ..CbspConfig::default()
    };
    let result = run_cross_binary(&binaries.iter().collect::<Vec<_>>(), &input, &config)
        .expect("pipeline succeeds");
    let mem = MemoryConfig::table1();
    let b = 1; // the 32o binary
    let file = result.pinpoints_for(b, &binaries[b], &input);
    // One recording serves the warm, cold, and full-run simulations.
    let trace = record_trace(&binaries[b], &input);
    let warm = replay_regions_with(&trace, &mem, &file, Warmup::Functional).expect("trace decodes");
    let cold = replay_regions_with(&trace, &mem, &file, Warmup::Cold).expect("trace decodes");
    let full = replay_full(&trace, &mem).expect("trace decodes");
    WarmupRow {
        name: name.to_string(),
        true_cpi: full.cpi(),
        warm_est: estimate_cpi_from_regions(&warm),
        cold_est: estimate_cpi_from_regions(&cold),
    }
}

/// Renders the study table.
pub fn render(rows: &[WarmupRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Warm-up study (32o binary, cross-binary regions)\n\
         {:<10} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "true CPI", "warm est", "warm err", "cold est", "cold err"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10} {:>9.3} {:>10.3} {:>9.2}% {:>10.3} {:>9.2}%",
            r.name,
            r.true_cpi,
            r.warm_est,
            100.0 * r.warm_err(),
            r.cold_est,
            100.0 * r.cold_err()
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_start_hurts_estimates() {
        let row = warmup_benchmark("gzip", Scale::Train, 50_000);
        assert!(row.warm_err() < 0.05, "warm err {}", row.warm_err());
        assert!(
            row.cold_est > row.warm_est,
            "cold ({}) must overestimate vs warm ({})",
            row.cold_est,
            row.warm_est
        );
        assert!(
            row.cold_err() > row.warm_err(),
            "cold err {} should exceed warm err {}",
            row.cold_err(),
            row.warm_err()
        );
    }
}
