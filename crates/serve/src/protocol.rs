//! The wire protocol: newline-delimited JSON frames.
//!
//! One request per line, one response per line, always in the same
//! order as the requests on that connection. The full specification,
//! with examples the integration tests assert against byte-for-byte,
//! lives in `docs/PROTOCOL.md`.
//!
//! A request:
//!
//! ```json
//! {"id": 1, "method": "pipeline.run", "params": {"benchmark": "gzip"}}
//! ```
//!
//! A response (`v` is [`PROTOCOL_VERSION`]):
//!
//! ```json
//! {"id": 1, "ok": true, "v": 1, "result": {"...": "..."}}
//! {"id": 1, "ok": false, "v": 1, "error": {"code": "bad_request", "message": "..."}}
//! ```
//!
//! Responses are built with a fixed key order (`id`, `ok`, `v`, then
//! `result`/`error`) so identical logical responses are identical
//! bytes — the property the byte-identity tests and the single-flight
//! cache both rely on.

use serde::Value;

/// Version stamped into every response as `"v"`. Bumped only when an
/// existing field changes meaning; adding result fields is not a bump
/// (clients must ignore unknown fields).
pub const PROTOCOL_VERSION: u64 = 1;

/// Typed failure classes of the protocol. The wire form is the
/// `snake_case` string from [`ErrorCode::as_str`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not valid JSON.
    Parse,
    /// The frame was JSON but not a valid request (missing/ill-typed
    /// fields, unknown method, unknown benchmark, bad parameters).
    BadRequest,
    /// The admission queue is full; retry later. The request was not
    /// executed.
    Overloaded,
    /// The request's deadline passed before a result was produced.
    Timeout,
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// The server failed internally; the request may not have executed.
    Internal,
    /// No worker can take the request right now (cluster router only:
    /// every replica-eligible shard was down, draining, or overloaded
    /// past its retry budget). The request was not executed.
    Unavailable,
}

impl ErrorCode {
    /// The wire form of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Timeout => "timeout",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
            ErrorCode::Unavailable => "unavailable",
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed protocol failure: code plus human-readable detail.
pub type Fault = (ErrorCode, String);

/// Builds a [`Fault`] (shorthand used throughout the server).
pub fn fault(code: ErrorCode, message: impl Into<String>) -> Fault {
    (code, message.into())
}

/// A parsed request frame.
#[derive(Debug, Clone)]
pub struct Request {
    /// Echoed verbatim into the response; correlates frames when a
    /// client pipelines requests. Any JSON value; `null` if absent.
    pub id: Value,
    /// The method name, e.g. `"pipeline.run"`.
    pub method: String,
    /// The `params` object (`Value::Null` if absent).
    pub params: Value,
    /// Per-request deadline override in milliseconds.
    pub timeout_ms: Option<u64>,
}

/// Parses one request frame.
///
/// # Errors
///
/// [`ErrorCode::Parse`] if the line is not JSON, [`ErrorCode::BadRequest`]
/// if it is JSON but not a request object.
pub fn parse_request(line: &str) -> Result<Request, Fault> {
    let value = serde_json::parse(line).map_err(|e| fault(ErrorCode::Parse, format!("{e}")))?;
    let Some(pairs) = value.as_object() else {
        return Err(fault(
            ErrorCode::BadRequest,
            format!("request must be an object, got {}", value.kind()),
        ));
    };
    let id = get(pairs, "id").cloned().unwrap_or(Value::Null);
    let method = match get(pairs, "method") {
        Some(Value::Str(m)) => m.clone(),
        Some(other) => {
            return Err(fault(
                ErrorCode::BadRequest,
                format!("`method` must be a string, got {}", other.kind()),
            ))
        }
        None => return Err(fault(ErrorCode::BadRequest, "missing `method`")),
    };
    let params = match get(pairs, "params") {
        None | Some(Value::Null) => Value::Null,
        Some(obj @ Value::Object(_)) => obj.clone(),
        Some(other) => {
            return Err(fault(
                ErrorCode::BadRequest,
                format!("`params` must be an object, got {}", other.kind()),
            ))
        }
    };
    let timeout_ms = match get(pairs, "timeout_ms") {
        None | Some(Value::Null) => None,
        Some(Value::UInt(n)) => Some(*n),
        Some(other) => {
            return Err(fault(
                ErrorCode::BadRequest,
                format!(
                    "`timeout_ms` must be a non-negative integer, got {}",
                    other.kind()
                ),
            ))
        }
    };
    Ok(Request {
        id,
        method,
        params,
        timeout_ms,
    })
}

/// Serializes a success response frame (no trailing newline).
pub fn ok_frame(id: &Value, result: Value) -> String {
    frame(id, true, ("result", result))
}

/// Serializes an error response frame (no trailing newline).
pub fn err_frame(id: &Value, code: ErrorCode, message: &str) -> String {
    frame(
        id,
        false,
        (
            "error",
            obj(vec![
                ("code", Value::Str(code.as_str().to_string())),
                ("message", Value::Str(message.to_string())),
            ]),
        ),
    )
}

/// Serializes an error response frame carrying a `retry_after_ms`
/// backoff hint (no trailing newline). Used for `overloaded`: the
/// server suggests how long a well-behaved client (or the cluster
/// router) should wait before retrying this node, derived from the
/// current queue depth.
pub fn err_frame_retry(id: &Value, code: ErrorCode, message: &str, retry_after_ms: u64) -> String {
    frame(
        id,
        false,
        (
            "error",
            obj(vec![
                ("code", Value::Str(code.as_str().to_string())),
                ("message", Value::Str(message.to_string())),
                ("retry_after_ms", Value::UInt(retry_after_ms)),
            ]),
        ),
    )
}

fn frame(id: &Value, ok: bool, payload: (&str, Value)) -> String {
    let body = obj(vec![
        ("id", id.clone()),
        ("ok", Value::Bool(ok)),
        ("v", Value::UInt(PROTOCOL_VERSION)),
        payload,
    ]);
    serde_json::to_string(&body).expect("value serialization cannot fail")
}

/// Builds an object value with the given key order.
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Looks up a key in an object's pair list.
pub fn get<'a>(pairs: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A required string parameter.
///
/// # Errors
///
/// [`ErrorCode::BadRequest`] when absent or not a string.
pub fn param_str(params: &Value, key: &str) -> Result<String, Fault> {
    match params.as_object().and_then(|p| get(p, key)) {
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(other) => Err(fault(
            ErrorCode::BadRequest,
            format!("param `{key}` must be a string, got {}", other.kind()),
        )),
        None => Err(fault(
            ErrorCode::BadRequest,
            format!("missing param `{key}`"),
        )),
    }
}

/// An optional string parameter with a default.
///
/// # Errors
///
/// [`ErrorCode::BadRequest`] when present but not a string.
pub fn param_str_or(params: &Value, key: &str, default: &str) -> Result<String, Fault> {
    match params.as_object().and_then(|p| get(p, key)) {
        None | Some(Value::Null) => Ok(default.to_string()),
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(other) => Err(fault(
            ErrorCode::BadRequest,
            format!("param `{key}` must be a string, got {}", other.kind()),
        )),
    }
}

/// An optional non-negative integer parameter with a default.
///
/// # Errors
///
/// [`ErrorCode::BadRequest`] when present but not a non-negative
/// integer.
pub fn param_u64_or(params: &Value, key: &str, default: u64) -> Result<u64, Fault> {
    match params.as_object().and_then(|p| get(p, key)) {
        None | Some(Value::Null) => Ok(default),
        Some(Value::UInt(n)) => Ok(*n),
        Some(other) => Err(fault(
            ErrorCode::BadRequest,
            format!(
                "param `{key}` must be a non-negative integer, got {}",
                other.kind()
            ),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_request() {
        let r = parse_request(r#"{"id": 7, "method": "ping"}"#).expect("parses");
        assert_eq!(r.id, Value::UInt(7));
        assert_eq!(r.method, "ping");
        assert_eq!(r.params, Value::Null);
        assert_eq!(r.timeout_ms, None);
    }

    #[test]
    fn rejects_garbage_with_parse_and_shape_with_bad_request() {
        assert_eq!(
            parse_request("{{nope").expect_err("garbage").0,
            ErrorCode::Parse
        );
        assert_eq!(
            parse_request("[1,2]").expect_err("array").0,
            ErrorCode::BadRequest
        );
        assert_eq!(
            parse_request(r#"{"id":1}"#).expect_err("no method").0,
            ErrorCode::BadRequest
        );
        assert_eq!(
            parse_request(r#"{"method": 5}"#).expect_err("bad method").0,
            ErrorCode::BadRequest
        );
        assert_eq!(
            parse_request(r#"{"method":"ping","params":[1]}"#)
                .expect_err("bad params")
                .0,
            ErrorCode::BadRequest
        );
        assert_eq!(
            parse_request(r#"{"method":"ping","timeout_ms":-3}"#)
                .expect_err("bad timeout")
                .0,
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn frames_have_fixed_key_order() {
        let ok = ok_frame(&Value::UInt(1), obj(vec![("pong", Value::Bool(true))]));
        assert_eq!(ok, r#"{"id":1,"ok":true,"v":1,"result":{"pong":true}}"#);
        let err = err_frame(&Value::Null, ErrorCode::Overloaded, "queue full");
        assert_eq!(
            err,
            r#"{"id":null,"ok":false,"v":1,"error":{"code":"overloaded","message":"queue full"}}"#
        );
    }

    #[test]
    fn retry_frames_carry_the_hint_after_the_message() {
        let err = err_frame_retry(&Value::UInt(3), ErrorCode::Overloaded, "queue full", 75);
        assert_eq!(
            err,
            r#"{"id":3,"ok":false,"v":1,"error":{"code":"overloaded","message":"queue full","retry_after_ms":75}}"#
        );
    }

    #[test]
    fn echoes_arbitrary_ids() {
        let r = parse_request(r#"{"id": {"a": [1]}, "method": "m"}"#).expect("parses");
        let frame = ok_frame(&r.id, Value::Null);
        assert!(frame.starts_with(r#"{"id":{"a":[1]},"#));
    }
}
