//! Per-connection protocol handling: NDJSON frames with an HTTP/1.1
//! sniffer.
//!
//! The first line of a connection decides its dialect: an HTTP request
//! line (`GET /metrics HTTP/1.1`) gets a one-shot HTTP response and the
//! connection closes; anything else is treated as newline-delimited
//! JSON for the connection's lifetime. Responses are written in request
//! order; a connection thread blocks while its current request is in
//! flight (pipelining across requests is done with multiple
//! connections).

use crate::engine::{prepare_spec, Reply, Work};
use crate::protocol::{
    err_frame, err_frame_retry, fault, obj, ok_frame, parse_request, ErrorCode, Request,
};
use crate::server::ServerCore;
use serde::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Serves one accepted connection to completion.
pub(crate) fn handle(core: Arc<ServerCore>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        if is_http_request_line(&line) {
            serve_http(&core, line.clone(), &mut reader, &mut writer);
            return;
        }
        let frame = handle_frame(&core, line.trim());
        if writer
            .write_all(frame.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
    }
}

/// Parses and executes one frame, returning the response frame.
fn handle_frame(core: &Arc<ServerCore>, line: &str) -> String {
    let started = Instant::now();
    let request = match parse_request(line) {
        Ok(r) => r,
        Err((code, message)) => {
            // Echo the id when the frame was at least a JSON object.
            let parsed = serde_json::parse(line).ok();
            let id = parsed
                .as_ref()
                .and_then(Value::as_object)
                .and_then(|p| crate::protocol::get(p, "id"))
                .cloned()
                .unwrap_or(Value::Null);
            core.metrics.count_request("(invalid)");
            core.metrics.count_error(code.as_str());
            return err_frame(&id, code, &message);
        }
    };
    core.metrics.count_request(&request.method);
    let outcome = dispatch(core, &request);
    core.metrics
        .latency
        .record_us(started.elapsed().as_micros() as u64);
    match outcome {
        Ok(result) => ok_frame(&request.id, result),
        Err((code, message)) => {
            core.metrics.count_error(code.as_str());
            if code == ErrorCode::Overloaded {
                // Backpressure carries a backoff hint so clients (and
                // the cluster router) wait instead of hot-retrying.
                err_frame_retry(&request.id, code, &message, core.retry_after_ms())
            } else {
                err_frame(&request.id, code, &message)
            }
        }
    }
}

/// Routes a request to its handler. Queued methods block this
/// connection thread until a worker delivers the reply.
fn dispatch(core: &Arc<ServerCore>, request: &Request) -> Reply {
    let deadline = Instant::now()
        + Duration::from_millis(
            request
                .timeout_ms
                .unwrap_or(core.cfg.default_timeout_ms)
                .min(3_600_000),
        );
    match request.method.as_str() {
        "ping" => Ok(obj(vec![("pong", Value::Bool(true))])),
        "server.shutdown" => {
            core.begin_drain();
            Ok(obj(vec![("draining", Value::Bool(true))]))
        }
        "pipeline.run" => {
            let spec = prepare_spec(&request.params, true)?;
            let key = format!(
                "pipeline.run:{}:{}",
                spec.keys.map.as_hex(),
                if spec.detail_full { "full" } else { "summary" }
            );
            run_queued(core, Work::Pipeline(Box::new(spec)), Some(key), deadline)
        }
        "estimate.cpi" => {
            let spec = prepare_spec(&request.params, false)?;
            crate::engine::reject_fuzzy_estimate(&spec)?;
            let key = format!("estimate.cpi:{}", spec.keys.map.as_hex());
            run_queued(core, Work::Estimate(Box::new(spec)), Some(key), deadline)
        }
        "simpoints.get" => {
            let spec = prepare_spec(&request.params, false)?;
            let key = format!("simpoints.get:{}", spec.keys.simpoint.as_hex());
            run_queued(core, Work::Simpoints(Box::new(spec)), Some(key), deadline)
        }
        "store.stats" => run_queued(core, Work::StoreStats, None, deadline),
        "trace.snapshot" => run_queued(core, Work::TraceSnapshot, None, deadline),
        other => Err(fault(
            ErrorCode::BadRequest,
            format!("unknown method `{other}`"),
        )),
    }
}

/// Submits a job and waits for its reply.
fn run_queued(core: &Arc<ServerCore>, work: Work, key: Option<String>, deadline: Instant) -> Reply {
    let rx = core.submit(work, key, deadline)?;
    match rx.recv() {
        Ok(reply) => reply,
        Err(_) => Err(fault(
            ErrorCode::Internal,
            "the request's worker went away without replying",
        )),
    }
}

/// `true` when the line looks like an HTTP/1.x request line.
fn is_http_request_line(line: &str) -> bool {
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let _path = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    matches!(
        method,
        "GET" | "HEAD" | "POST" | "PUT" | "DELETE" | "OPTIONS"
    ) && version.starts_with("HTTP/1.")
}

/// One-shot HTTP adapter: `GET /healthz` and `GET /metrics`.
fn serve_http<R: Read>(
    core: &Arc<ServerCore>,
    request_line: String,
    reader: &mut BufReader<R>,
    writer: &mut TcpStream,
) {
    // Drain headers; bodies are not accepted on these endpoints.
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) | Err(_) => break,
            Ok(_) if header.trim().is_empty() => break,
            Ok(_) => {}
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = match (method, path) {
        ("GET", "/healthz") => (
            "200 OK",
            serde_json::to_string(&obj(vec![
                ("status", Value::Str("ok".to_string())),
                // Build version and uptime let operators (and the
                // cluster router) detect mixed-version fleets and
                // silent restarts from the probe they already run.
                ("version", Value::Str(env!("CARGO_PKG_VERSION").to_string())),
                ("uptime_s", Value::UInt(core.uptime_s())),
                ("shard", core.cfg.shard_id.map_or(Value::Null, Value::UInt)),
                ("draining", Value::Bool(core.is_draining())),
            ]))
            .expect("healthz serializes"),
        ),
        ("GET", "/metrics") => ("200 OK", metrics_body(core)),
        _ => (
            "404 Not Found",
            r#"{"error":"not found (try /healthz or /metrics)"}"#.to_string(),
        ),
    };
    let _ = write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = writer.flush();
}

/// The `/metrics` document: serve-side counters, cache effectiveness,
/// and the global trace snapshot.
fn metrics_body(core: &Arc<ServerCore>) -> String {
    let (depth, executing) = core.queue_depths();
    let serve = core
        .metrics
        .to_value(depth as u64, executing as u64, core.is_draining());

    let snapshot = cbsp_trace::snapshot();
    let counter = |name: &str| *snapshot.counters.get(name).unwrap_or(&0);
    let ratio = |hits: u64, misses: u64| {
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    };
    let (store_hits, store_misses) = (counter("store/hits"), counter("store/misses"));
    let (trace_hits, trace_misses) = (
        counter("sim/trace_cache_hits"),
        counter("sim/trace_cache_misses"),
    );
    let singleflight = core.metrics.singleflight_hits.load(Ordering::Relaxed);
    let requests = core.metrics.requests.load(Ordering::Relaxed);
    let result_hits = core.engine.result_hits.load(Ordering::Relaxed);
    let result_misses = core.engine.result_misses.load(Ordering::Relaxed);
    let cache = obj(vec![
        ("store_hits", Value::UInt(store_hits)),
        ("store_misses", Value::UInt(store_misses)),
        (
            "store_hit_ratio",
            Value::Float(ratio(store_hits, store_misses)),
        ),
        ("trace_hits", Value::UInt(trace_hits)),
        ("trace_misses", Value::UInt(trace_misses)),
        (
            "trace_hit_ratio",
            Value::Float(ratio(trace_hits, trace_misses)),
        ),
        ("result_hits", Value::UInt(result_hits)),
        ("result_misses", Value::UInt(result_misses)),
        (
            "result_hit_ratio",
            Value::Float(ratio(result_hits, result_misses)),
        ),
        (
            "singleflight_hit_ratio",
            Value::Float(ratio(singleflight, requests.saturating_sub(singleflight))),
        ),
    ]);
    let trace = serde_json::parse(&cbsp_trace::metrics_json()).unwrap_or(Value::Null);
    serde_json::to_string(&obj(vec![
        ("serve", serve),
        ("cache", cache),
        ("trace", trace),
    ]))
    .expect("metrics serialize")
}
