//! # cbsp-serve — the batching simulation-point query daemon
//!
//! The pipeline's cost profile begs for a resident process: a cold CLI
//! invocation pays process start, store open, and (on first touch)
//! full stage execution, while the artifacts themselves are
//! content-addressed and immutable — perfect to keep warm. This crate
//! serves the cross-binary pipeline from long-lived state: one
//! [`ArtifactStore`](cbsp_store::ArtifactStore) handle, one in-memory
//! trace cache, one metrics registry, shared by every request.
//!
//! Built entirely on `std` networking — the workspace vendors its
//! dependencies and takes no async runtime.
//!
//! ## Wire surface
//!
//! * **NDJSON over TCP** — one JSON request per line, one response per
//!   line ([`protocol`], spec in `docs/PROTOCOL.md`). Methods:
//!   `ping`, `pipeline.run`, `simpoints.get`, `estimate.cpi`,
//!   `store.stats`, `trace.snapshot`, `server.shutdown`.
//! * **HTTP/1.1 adapter** — `GET /healthz` and `GET /metrics` on the
//!   same port, for probes and scrapers that don't speak the NDJSON
//!   protocol.
//!
//! ## Admission pipeline
//!
//! Requests pass through a bounded queue with typed backpressure
//! (`overloaded`), single-flight deduplication keyed on the store's
//! content digests (two concurrent identical queries execute once),
//! micro-batching of compatible `pipeline.run` requests into one
//! `cbsp-par` fan-out, and per-request deadlines enforced at stage
//! boundaries. A graceful drain (`server.shutdown`) finishes admitted
//! work before [`Server::wait`] returns.
//!
//! ## Example
//!
//! ```no_run
//! use cbsp_serve::{ServeConfig, Server};
//!
//! let server = Server::start(ServeConfig {
//!     addr: "127.0.0.1:0".to_string(),
//!     ..ServeConfig::default()
//! })
//! .expect("server starts");
//! println!("listening on {}", server.addr());
//! server.wait().expect("clean drain"); // returns after server.shutdown
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conn;
mod engine;
pub mod metrics;
pub mod protocol;
pub mod route;
mod server;

pub use engine::RESULT_CACHE_CAP;
pub use server::{ServeConfig, Server};
