//! The daemon: TCP listener, admission queue, worker pool, drain.
//!
//! ## Request life cycle
//!
//! ```text
//! accept ─► connection thread ─► parse ─► prepare (compile + keys)
//!                                           │
//!                         single-flight? ───┤ join in-flight twin
//!                         queue full? ──────┤ `overloaded`
//!                                           ▼
//!                              bounded queue ─► worker
//!                                           batch compatible pipeline.run
//!                                           execute (deadline at stage
//!                                           boundaries) ─► deliver to all
//!                                           waiters ─► response frame
//! ```
//!
//! Admission happens on the connection thread: the request is resolved
//! to content digests first, so an identical in-flight request (same
//! digests) is joined instead of queued — one execution serves every
//! waiter. The queue bounds *admitted* work; when `queue + executing`
//! reaches `max_inflight`, new work is rejected with `overloaded`
//! rather than building unbounded latency.
//!
//! ## Drain
//!
//! The `server.shutdown` method (or [`Server::shutdown`]) flips the
//! draining flag: new connections and new requests are refused, queued
//! and executing requests run to completion, then [`Server::wait`]
//! returns. There is no signal handler — the workspace forbids unsafe
//! code, so SIGTERM cannot be trapped; process supervisors should send
//! `server.shutdown` and wait for the port to close.

use crate::engine::{Engine, Reply, Work};
use crate::metrics::ServeMetrics;
use crate::protocol::{fault, ErrorCode, Fault};
use cbsp_par::Pool;
use cbsp_store::ArtifactStore;
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Configuration of one [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:4650` (`:0` picks a free port).
    pub addr: String,
    /// Thread budget per execution slot (0 = one per core). Results
    /// are bit-identical at every setting.
    pub threads: usize,
    /// Admission bound: queued + executing requests beyond this are
    /// rejected with `overloaded`.
    pub max_inflight: usize,
    /// Artifact-store directory (created if absent).
    pub cache_dir: PathBuf,
    /// Deadline for requests that don't send `timeout_ms`.
    pub default_timeout_ms: u64,
    /// Most `pipeline.run` requests one worker executes as one batch.
    pub batch_max: usize,
    /// Dispatcher threads draining the queue. Two keeps cheap queries
    /// (`store.stats`) from stalling behind a long pipeline while still
    /// letting batches form.
    pub workers: usize,
    /// Shard identity when this daemon serves as one worker of a
    /// `cbsp-cluster` fleet (spawned by the router, or started
    /// standalone with `--shard-id` for adoption). Surfaced in
    /// `GET /healthz` so the router can verify it is talking to the
    /// worker it thinks it is; `None` for a standalone daemon.
    pub shard_id: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:4650".to_string(),
            threads: 0,
            max_inflight: 64,
            cache_dir: PathBuf::from(".cbsp-cache"),
            default_timeout_ms: 30_000,
            batch_max: 8,
            workers: 2,
            shard_id: None,
        }
    }
}

/// Where a finished job's reply goes.
pub(crate) enum ReplyTo {
    /// A plain queued request: one waiting connection thread.
    Direct(mpsc::Sender<Reply>),
    /// A single-flight leader: every connection registered under the
    /// key receives a clone of the reply.
    Keyed(String),
}

/// One admitted unit of work.
pub(crate) struct Job {
    pub work: Work,
    pub reply: ReplyTo,
    pub deadline: Instant,
    pub enqueued: Instant,
}

struct QueueState {
    queue: VecDeque<Job>,
    /// Jobs currently held by workers (admission counts them).
    executing: usize,
    /// Single-flight registry: key → waiting response channels. An
    /// entry exists exactly while its leader is queued or executing.
    inflight: HashMap<String, Vec<mpsc::Sender<Reply>>>,
}

/// Shared server state: engine, metrics, and the admission queue.
pub(crate) struct ServerCore {
    pub cfg: ServeConfig,
    pub engine: Engine,
    pub metrics: ServeMetrics,
    state: Mutex<QueueState>,
    job_ready: Condvar,
    drained: Condvar,
    draining: AtomicBool,
    addr: Mutex<Option<SocketAddr>>,
    /// When the server started (for `/healthz` uptime reporting).
    started: Instant,
}

impl ServerCore {
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Whole seconds since [`Server::start`] — the `/healthz` uptime
    /// field operators (and the cluster router) use to spot restarts.
    pub fn uptime_s(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// The backoff hint attached to `overloaded` rejections: scales
    /// with the queue depth at rejection time, so a client retrying
    /// after the hint finds a drained (or at least shorter) queue.
    /// Deliberately coarse — it is a hint, not a reservation.
    pub fn retry_after_ms(&self) -> u64 {
        let (queued, _executing) = self.queue_depths();
        (25 + 10 * queued as u64).min(2_000)
    }

    /// Current `(queued, executing)` — sampled for `/metrics`.
    pub fn queue_depths(&self) -> (usize, usize) {
        let st = self.state.lock().expect("queue lock");
        (st.queue.len(), st.executing)
    }

    /// Flips the server into drain mode (idempotent): refuse new work,
    /// finish what was admitted, wake the accept loop.
    pub fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        self.job_ready.notify_all();
        // The accept loop blocks in `accept()`; a throwaway connection
        // wakes it so it can observe the flag and exit.
        if let Some(addr) = *self.addr.lock().expect("addr lock") {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
        }
    }

    /// Admits `work`. With a single-flight `key`, an identical
    /// in-flight request absorbs this one: the returned channel yields
    /// the twin's reply and nothing new is queued.
    ///
    /// # Errors
    ///
    /// `shutting_down` while draining, `overloaded` when the admission
    /// bound is reached.
    pub fn submit(
        &self,
        work: Work,
        key: Option<String>,
        deadline: Instant,
    ) -> Result<mpsc::Receiver<Reply>, Fault> {
        if self.is_draining() {
            return Err(fault(ErrorCode::ShuttingDown, "server is draining"));
        }
        let (tx, rx) = mpsc::channel();
        let mut st = self.state.lock().expect("queue lock");
        if let Some(k) = &key {
            if let Some(waiters) = st.inflight.get_mut(k) {
                waiters.push(tx);
                self.metrics
                    .singleflight_hits
                    .fetch_add(1, Ordering::Relaxed);
                return Ok(rx);
            }
        }
        if st.queue.len() + st.executing >= self.cfg.max_inflight {
            self.metrics.overloaded.fetch_add(1, Ordering::Relaxed);
            return Err(fault(
                ErrorCode::Overloaded,
                format!(
                    "admission queue full ({} in flight); retry later",
                    self.cfg.max_inflight
                ),
            ));
        }
        let reply = match key {
            Some(k) => {
                st.inflight.insert(k.clone(), vec![tx]);
                ReplyTo::Keyed(k)
            }
            None => ReplyTo::Direct(tx),
        };
        let now = Instant::now();
        st.queue.push_back(Job {
            work,
            reply,
            deadline,
            enqueued: now,
        });
        drop(st);
        self.job_ready.notify_one();
        Ok(rx)
    }

    /// Sends `reply` to everyone waiting on `job` and releases its
    /// single-flight entry.
    fn deliver(&self, job: Job, reply: Reply) {
        if matches!(&reply, Err((ErrorCode::Timeout, _))) {
            self.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
        }
        match job.reply {
            ReplyTo::Direct(tx) => {
                let _ = tx.send(reply);
            }
            ReplyTo::Keyed(key) => {
                let waiters = self
                    .state
                    .lock()
                    .expect("queue lock")
                    .inflight
                    .remove(&key)
                    .unwrap_or_default();
                for tx in waiters {
                    let _ = tx.send(reply.clone());
                }
            }
        }
    }

    /// Marks `n` jobs finished and signals drain completion when the
    /// server goes idle.
    fn finish(&self, n: usize) {
        let mut st = self.state.lock().expect("queue lock");
        st.executing -= n;
        if st.executing == 0 && st.queue.is_empty() {
            self.drained.notify_all();
        }
    }

    /// One dispatcher: pop, micro-batch, execute, deliver — until the
    /// queue is empty *and* the server is draining.
    fn worker_loop(self: &Arc<Self>) {
        loop {
            let batch = {
                let mut st = self.state.lock().expect("queue lock");
                let first = loop {
                    if let Some(job) = st.queue.pop_front() {
                        break job;
                    }
                    if self.is_draining() {
                        return;
                    }
                    st = self.job_ready.wait(st).expect("queue lock");
                };
                let mut batch = vec![first];
                let lead_shape = match &batch[0].work {
                    Work::Pipeline(s) => Some((s.scale_name, s.config.interval_target)),
                    _ => None,
                };
                if let Some(shape) = lead_shape {
                    // Pull compatible pipeline.run jobs (same scale and
                    // interval) into this execution — one pool fan-out
                    // instead of N sequential runs.
                    let mut i = 0;
                    while i < st.queue.len() && batch.len() < self.cfg.batch_max.max(1) {
                        let take = matches!(
                            &st.queue[i].work,
                            Work::Pipeline(s)
                                if (s.scale_name, s.config.interval_target) == shape
                        );
                        if take {
                            let job = st.queue.remove(i).expect("index in range");
                            batch.push(job);
                        } else {
                            i += 1;
                        }
                    }
                }
                st.executing += batch.len();
                batch
            };
            let n = batch.len();
            self.execute_batch(batch);
            self.finish(n);
        }
    }

    /// Executes one popped batch: times out stale jobs, fans the rest
    /// out on the pool, converts panics into `internal` replies so a
    /// poisoned request can never take a worker down.
    fn execute_batch(&self, batch: Vec<Job>) {
        let now = Instant::now();
        let mut live = Vec::with_capacity(batch.len());
        for job in batch {
            self.metrics.queue_wait_us.fetch_add(
                now.duration_since(job.enqueued).as_micros() as u64,
                Ordering::Relaxed,
            );
            if now >= job.deadline {
                self.deliver(job, Err(fault(ErrorCode::Timeout, "expired while queued")));
            } else {
                live.push(job);
            }
        }
        if live.is_empty() {
            return;
        }
        if matches!(live[0].work, Work::Pipeline(_)) {
            self.metrics.count_batch(live.len() as u64);
        }
        let replies: Vec<Reply> = catch_unwind(AssertUnwindSafe(|| self.run_jobs(&live)))
            .unwrap_or_else(|_| {
                vec![Err(fault(ErrorCode::Internal, "execution panicked")); live.len()]
            });
        for (job, reply) in live.into_iter().zip(replies) {
            self.deliver(job, reply);
        }
    }

    /// Computes a reply per job. A multi-job batch is always
    /// `pipeline.run`; each item gets an equal share of the thread
    /// budget, and each keeps its own deadline.
    fn run_jobs(&self, jobs: &[Job]) -> Vec<Reply> {
        if jobs.len() > 1 {
            let pool = Pool::new(self.engine.threads);
            let share = pool.split(jobs.len()).threads();
            return pool.run_indexed(jobs.len(), |i| match &jobs[i].work {
                Work::Pipeline(spec) => self.engine.execute_pipeline(spec, share, jobs[i].deadline),
                _ => unreachable!("only pipeline.run is batched"),
            });
        }
        let job = &jobs[0];
        vec![match &job.work {
            Work::Pipeline(spec) => {
                self.engine
                    .execute_pipeline(spec, self.engine.threads, job.deadline)
            }
            Work::Estimate(spec) => self.engine.execute_estimate(spec, job.deadline),
            Work::Simpoints(spec) => self.engine.execute_simpoints(spec),
            Work::StoreStats => self.engine.execute_store_stats(),
            Work::TraceSnapshot => self.engine.execute_trace_snapshot(),
        }]
    }
}

/// A running daemon. Dropping the handle does *not* stop the server;
/// call [`Server::shutdown`] then [`Server::wait`] (or send the
/// `server.shutdown` method over the wire).
pub struct Server {
    core: Arc<ServerCore>,
    addr: SocketAddr,
    accept: thread::JoinHandle<()>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Opens the artifact store, binds the listener, and starts the
    /// accept loop and dispatcher threads.
    ///
    /// # Errors
    ///
    /// Returns a message when the store cannot be opened or the
    /// address cannot be bound.
    pub fn start(cfg: ServeConfig) -> Result<Server, String> {
        let store = ArtifactStore::open(&cfg.cache_dir)
            .map_err(|e| format!("opening store {}: {e}", cfg.cache_dir.display()))?;
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local addr: {e}"))?;
        let threads = cfg.threads;
        let workers = cfg.workers.max(1);
        let core = Arc::new(ServerCore {
            engine: Engine::new(Arc::new(store), threads),
            metrics: ServeMetrics::default(),
            cfg,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                executing: 0,
                inflight: HashMap::new(),
            }),
            job_ready: Condvar::new(),
            drained: Condvar::new(),
            draining: AtomicBool::new(false),
            addr: Mutex::new(Some(addr)),
            started: Instant::now(),
        });

        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let core = Arc::clone(&core);
            let handle = thread::Builder::new()
                .name(format!("cbsp-serve-worker-{i}"))
                .spawn(move || core.worker_loop())
                .map_err(|e| format!("spawning worker: {e}"))?;
            worker_handles.push(handle);
        }

        let accept_core = Arc::clone(&core);
        let accept = thread::Builder::new()
            .name("cbsp-serve-accept".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_core.is_draining() {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let conn_core = Arc::clone(&accept_core);
                    let _ = thread::Builder::new()
                        .name("cbsp-serve-conn".to_string())
                        .spawn(move || crate::conn::handle(conn_core, stream));
                }
                // The listener drops here; further connects are refused.
            })
            .map_err(|e| format!("spawning accept loop: {e}"))?;

        Ok(Server {
            core,
            addr,
            accept,
            workers: worker_handles,
        })
    }

    /// The bound address (useful with `addr: "127.0.0.1:0"`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a graceful drain (idempotent, non-blocking): new work is
    /// refused, admitted work completes.
    pub fn shutdown(&self) {
        self.core.begin_drain();
    }

    /// Blocks until the server has drained: the accept loop has
    /// exited, the queue is empty, and no request is executing. Only
    /// returns after a drain was started.
    ///
    /// # Errors
    ///
    /// Returns a message if a server thread panicked.
    pub fn wait(self) -> Result<(), String> {
        self.accept
            .join()
            .map_err(|_| "accept loop panicked".to_string())?;
        {
            let mut st = self.core.state.lock().expect("queue lock");
            while !(st.queue.is_empty() && st.executing == 0) {
                st = self.core.drained.wait(st).expect("queue lock");
            }
        }
        self.core.job_ready.notify_all();
        for w in self.workers {
            w.join().map_err(|_| "worker panicked".to_string())?;
        }
        Ok(())
    }
}
