//! Request routing for multi-worker topologies (`cbsp-cluster`).
//!
//! A cluster router must decide which worker answers a frame *without*
//! executing it. The decision is a pure function of the request: the
//! digest-keyed methods resolve to their map-stage content digest —
//! the same digest the daemon's single-flight deduplication and result
//! cache key on — so every request about one `(benchmark, scale,
//! interval)` lands on the same shard and the per-shard request
//! sequence is indistinguishable from a single-process run. That is
//! the whole byte-identity argument for sharded serving, stated once,
//! here.
//!
//! The router calls [`route`]; everything else in this module is the
//! typed description of the answer.

use crate::engine::prepare_spec;
use crate::protocol::{fault, ErrorCode, Fault, Request};

/// Where one parsed request must go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// Answered by the routing process itself (`ping`): the response
    /// is defined by the protocol and identical on every node.
    Local,
    /// `server.shutdown`: the router drains itself *and* every worker
    /// it owns.
    Shutdown,
    /// Node-local inspection (`store.stats`, `trace.snapshot`): no
    /// content digest exists; the router sends these to its first
    /// healthy shard, deterministically.
    AnyShard,
    /// Digest-keyed work: route by this map-stage content digest
    /// (lower-case hex SHA-256).
    Digest(String),
}

/// Decides the [`Route`] for one parsed request.
///
/// Mirrors the daemon's own dispatch exactly: any request this
/// function rejects would have been rejected by a worker with the
/// same error code and message, so a router may answer the failure
/// locally and still be byte-identical to single-process serving.
///
/// # Errors
///
/// [`ErrorCode::BadRequest`] for unknown methods or invalid params,
/// exactly as the daemon itself would report them.
pub fn route(request: &Request) -> Result<Route, Fault> {
    match request.method.as_str() {
        "ping" => Ok(Route::Local),
        "server.shutdown" => Ok(Route::Shutdown),
        "store.stats" | "trace.snapshot" => Ok(Route::AnyShard),
        "pipeline.run" => {
            let spec = prepare_spec(&request.params, true)?;
            Ok(Route::Digest(spec.keys.map.as_hex().to_string()))
        }
        "estimate.cpi" => {
            let spec = prepare_spec(&request.params, false)?;
            crate::engine::reject_fuzzy_estimate(&spec)?;
            Ok(Route::Digest(spec.keys.map.as_hex().to_string()))
        }
        "simpoints.get" => {
            let spec = prepare_spec(&request.params, false)?;
            Ok(Route::Digest(spec.keys.map.as_hex().to_string()))
        }
        other => Err(fault(
            ErrorCode::BadRequest,
            format!("unknown method `{other}`"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;

    fn route_line(line: &str) -> Result<Route, Fault> {
        route(&parse_request(line).expect("parses"))
    }

    #[test]
    fn local_and_shard_methods_are_classified() {
        assert_eq!(route_line(r#"{"method":"ping"}"#), Ok(Route::Local));
        assert_eq!(
            route_line(r#"{"method":"server.shutdown"}"#),
            Ok(Route::Shutdown)
        );
        assert_eq!(
            route_line(r#"{"method":"store.stats"}"#),
            Ok(Route::AnyShard)
        );
        assert_eq!(
            route_line(r#"{"method":"trace.snapshot"}"#),
            Ok(Route::AnyShard)
        );
    }

    #[test]
    fn digest_routing_is_stable_and_method_independent() {
        let a = route_line(
            r#"{"method":"pipeline.run","params":{"benchmark":"gzip","scale":"test","interval":20000}}"#,
        )
        .expect("routes");
        let b = route_line(
            r#"{"method":"estimate.cpi","params":{"benchmark":"gzip","scale":"test","interval":20000}}"#,
        )
        .expect("routes");
        let c = route_line(
            r#"{"method":"simpoints.get","params":{"benchmark":"gzip","scale":"test","interval":20000}}"#,
        )
        .expect("routes");
        // All methods over the same content route to the same digest —
        // warm state for a benchmark accretes on one shard.
        assert_eq!(a, b);
        assert_eq!(b, c);
        let Route::Digest(digest) = a else {
            panic!("expected a digest route, got {a:?}");
        };
        assert_eq!(digest.len(), 64, "digest is hex sha-256");
        // A different interval is different content.
        let other = route_line(
            r#"{"method":"pipeline.run","params":{"benchmark":"gzip","scale":"test","interval":20001}}"#,
        )
        .expect("routes");
        assert_ne!(Route::Digest(digest), other);
    }

    #[test]
    fn errors_match_worker_dispatch() {
        assert_eq!(
            route_line(r#"{"method":"no.such"}"#).expect_err("unknown"),
            fault(ErrorCode::BadRequest, "unknown method `no.such`")
        );
        assert_eq!(
            route_line(r#"{"method":"pipeline.run","params":{"benchmark":"nope"}}"#)
                .expect_err("bad benchmark")
                .0,
            ErrorCode::BadRequest
        );
        // `detail` is pipeline.run-only — the router must reproduce
        // the worker's rejection for the other methods.
        assert_eq!(
            route_line(
                r#"{"method":"estimate.cpi","params":{"benchmark":"gzip","detail":"full"}}"#
            )
            .expect_err("detail rejected")
            .1,
            "param `detail` is only accepted by pipeline.run"
        );
    }
}
