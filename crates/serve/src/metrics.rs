//! Server-local counters and a log-bucketed latency histogram.
//!
//! Kept separate from the global [`cbsp_trace`] collector on purpose:
//! these counters describe *this server instance* (admission decisions,
//! batching, request latency) and must work even when tracing is
//! disabled, while `cbsp_trace` aggregates whatever pipeline work runs
//! in the process. `GET /metrics` surfaces both side by side.

use crate::protocol::obj;
use serde::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of power-of-two latency buckets: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` microseconds, so the top bucket starts at ~34 s.
const BUCKETS: usize = 36;

/// A lock-free power-of-two histogram of microsecond samples. Quantile
/// estimates return the upper bound of the containing bucket, i.e. they
/// are conservative to within a factor of two — plenty for the
/// "did p95 regress 10x" question `/metrics` exists to answer.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }
}

impl Histogram {
    /// Records one sample of `us` microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = (63 - u64::leading_zeros(us.max(1)) as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0.0..=1.0`) in milliseconds, or 0 when empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Upper bound of bucket i: 2^(i+1) µs.
                return (1u64 << (i + 1).min(63)) as f64 / 1000.0;
            }
        }
        (1u64 << BUCKETS) as f64 / 1000.0
    }
}

/// All serve-side counters, updated by connection and worker threads.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests received (every parsed frame, including rejected ones).
    pub requests: AtomicU64,
    /// Requests that joined an identical in-flight request instead of
    /// queueing their own execution.
    pub singleflight_hits: AtomicU64,
    /// Requests rejected because the admission queue was full.
    pub overloaded: AtomicU64,
    /// Requests that hit their deadline (in queue or at a stage
    /// boundary).
    pub timeouts: AtomicU64,
    /// Micro-batches executed (a solo `pipeline.run` counts as a batch
    /// of one).
    pub batches: AtomicU64,
    /// `pipeline.run` executions that went through a batch.
    pub batched_requests: AtomicU64,
    /// Largest batch executed so far.
    pub max_batch: AtomicU64,
    /// Total time requests spent queued before a worker picked them up.
    pub queue_wait_us: AtomicU64,
    /// End-to-end request latency (parse to response), µs buckets.
    pub latency: Histogram,
    per_method: Mutex<BTreeMap<String, u64>>,
    per_error: Mutex<BTreeMap<String, u64>>,
}

impl ServeMetrics {
    /// Counts a request of `method`.
    pub fn count_request(&self, method: &str) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let mut map = self.per_method.lock().expect("metrics lock");
        *map.entry(method.to_string()).or_insert(0) += 1;
    }

    /// Counts an error response with the given code.
    pub fn count_error(&self, code: &str) {
        let mut map = self.per_error.lock().expect("metrics lock");
        *map.entry(code.to_string()).or_insert(0) += 1;
    }

    /// Records a completed batch of `n` pipeline executions.
    pub fn count_batch(&self, n: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(n, Ordering::Relaxed);
        self.max_batch.fetch_max(n, Ordering::Relaxed);
    }

    /// Renders the `serve` section of `GET /metrics`. `queue_depth` and
    /// `executing` are sampled by the caller under the queue lock.
    pub fn to_value(&self, queue_depth: u64, executing: u64, draining: bool) -> Value {
        let load = |a: &AtomicU64| Value::UInt(a.load(Ordering::Relaxed));
        let map_value = |m: &Mutex<BTreeMap<String, u64>>| {
            Value::Object(
                m.lock()
                    .expect("metrics lock")
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::UInt(*v)))
                    .collect(),
            )
        };
        obj(vec![
            ("requests", load(&self.requests)),
            ("by_method", map_value(&self.per_method)),
            ("errors_by_code", map_value(&self.per_error)),
            ("singleflight_hits", load(&self.singleflight_hits)),
            ("overloaded", load(&self.overloaded)),
            ("timeouts", load(&self.timeouts)),
            ("batches", load(&self.batches)),
            ("batched_requests", load(&self.batched_requests)),
            ("max_batch", load(&self.max_batch)),
            ("queue_depth", Value::UInt(queue_depth)),
            ("executing", Value::UInt(executing)),
            ("draining", Value::Bool(draining)),
            (
                "queue_wait_ms_total",
                Value::Float(self.queue_wait_us.load(Ordering::Relaxed) as f64 / 1000.0),
            ),
            (
                "latency_ms",
                obj(vec![
                    ("count", Value::UInt(self.latency.count())),
                    ("p50", Value::Float(self.latency.quantile_ms(0.50))),
                    ("p95", Value::Float(self.latency.quantile_ms(0.95))),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::default();
        for _ in 0..99 {
            h.record_us(1_000); // ~1 ms
        }
        h.record_us(1_000_000); // ~1 s straggler
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ms(0.50);
        assert!((1.0..=2.048).contains(&p50), "p50 = {p50}");
        let p95 = h.quantile_ms(0.95);
        assert!(p95 <= 2.048, "p95 = {p95}");
        let p100 = h.quantile_ms(1.0);
        assert!(p100 >= 1_000.0, "p100 = {p100}");
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ms(0.95), 0.0);
    }

    #[test]
    fn metrics_render_without_panicking() {
        let m = ServeMetrics::default();
        m.count_request("ping");
        m.count_error("bad_request");
        m.count_batch(3);
        let v = m.to_value(2, 1, false);
        let text = serde_json::to_string(&v).expect("serializes");
        assert!(text.contains("\"requests\":1"));
        assert!(text.contains("\"batched_requests\":3"));
    }
}
