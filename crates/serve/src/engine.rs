//! Request preparation and execution against warm pipeline state.
//!
//! The [`Engine`] owns the process-lifetime caches — the
//! content-addressed [`ArtifactStore`], the two-tier [`TraceCache`],
//! and a small in-memory cache of completed runs — and knows how to
//! turn protocol params into [`Work`] items and work items into
//! result values. Admission policy (queueing, batching, deadlines)
//! lives in [`crate::server`]; nothing here blocks on anything but
//! the pipeline itself.
//!
//! The result cache is what makes the daemon *warm* rather than just
//! resident: the store alone still costs a disk read plus
//! deserialization of every stage artifact per request, while a
//! cached [`CachedRun`] answers from RAM with its content hash
//! precomputed. Keyed by the map-stage digest — a content hash over
//! binaries, input, and config — so a hit is exactly a byte-identical
//! rerun.

use crate::protocol::{fault, get, obj, param_str, param_str_or, param_u64_or, ErrorCode, Fault};
use cbsp_core::{mapping_stats, CbspConfig, CbspError, CrossBinaryResult, FuzzyConfig};
use cbsp_par::Pool;
use cbsp_program::{compile, workloads, Binary, CompileTarget, Input, Scale};
use cbsp_sim::MemoryConfig;
use cbsp_simpoint::{EstimatorConfig, SimPointResult};
use cbsp_store::{
    content_hash, pipeline_keys, stage_namespaces, ArtifactStore, CachePolicy, Orchestrator,
    PipelineKeys, RunReport,
};
use serde::Value;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A fully resolved pipeline request: benchmark compiled to its four
/// binaries, config fixed, stage keys derived. Everything needed to
/// execute — or to recognize an identical in-flight request by content
/// digest alone.
#[derive(Debug)]
pub(crate) struct PipelineSpec {
    pub benchmark: String,
    pub scale_name: &'static str,
    pub input: Input,
    pub config: CbspConfig,
    pub binaries: Vec<Binary>,
    pub keys: PipelineKeys,
    /// `pipeline.run` only: embed the full `CrossBinaryResult` in the
    /// response (`"detail": "full"`).
    pub detail_full: bool,
}

/// One unit of admitted work.
#[derive(Debug)]
pub(crate) enum Work {
    /// `pipeline.run` — batchable.
    Pipeline(Box<PipelineSpec>),
    /// `estimate.cpi` — pipeline plus trace replays.
    Estimate(Box<PipelineSpec>),
    /// `simpoints.get` — store lookup by derived key, never computes.
    Simpoints(Box<PipelineSpec>),
    /// `store.stats`.
    StoreStats,
    /// `trace.snapshot`.
    TraceSnapshot,
}

/// A finished request: a result value or a typed fault.
pub(crate) type Reply = Result<Value, Fault>;

/// A completed pipeline run pinned in memory, content hash included —
/// the unit the result cache holds and every pipeline-shaped method
/// reads from.
pub(crate) struct CachedRun {
    pub cross: CrossBinaryResult,
    pub report: RunReport,
    /// `content_hash(&cross)`, computed once at insert (hashing a ref
    /// -scale result costs milliseconds — comparable to the store
    /// round trip the cache exists to avoid).
    pub result_hash: String,
}

/// Completed runs the daemon keeps resident. Bounds memory, not
/// correctness: an evicted run is recomputed from the store at the
/// cost of one artifact read per stage. Public because the cluster
/// bench sizes its working set against this capacity (a fleet of N
/// workers holds N× as many warm runs — the capacity axis the
/// `cluster` lane measures).
pub const RESULT_CACHE_CAP: usize = 16;

/// The result cache proper: keyed entries plus their FIFO insertion
/// order (the eviction queue).
#[derive(Default)]
struct ResultCache {
    order: VecDeque<String>,
    entries: HashMap<String, Arc<CachedRun>>,
}

/// Warm per-process pipeline state shared by all workers.
pub(crate) struct Engine {
    pub store: Arc<ArtifactStore>,
    pub traces: cbsp_store::TraceCache<'static>,
    /// Thread budget for one execution slot (a batch shares it).
    pub threads: usize,
    /// Completed runs keyed by map-stage digest, FIFO-evicted at
    /// [`RESULT_CACHE_CAP`].
    runs: Mutex<ResultCache>,
    /// Requests answered from the result cache (for `/metrics`).
    pub result_hits: AtomicU64,
    /// Requests that had to run the (store-backed) pipeline.
    pub result_misses: AtomicU64,
}

/// The `fuzzy_map` param: absent, `null`, or `false` ⇒ exact-only
/// mapping; `true` ⇒ the fuzzy fallback at the default acceptance
/// threshold; a number ⇒ a custom threshold in `(0, 1]`.
fn param_fuzzy(params: &Value) -> Result<Option<FuzzyConfig>, Fault> {
    let threshold = match params.as_object().and_then(|p| get(p, "fuzzy_map")) {
        None | Some(Value::Null | Value::Bool(false)) => return Ok(None),
        Some(Value::Bool(true)) => return Ok(Some(FuzzyConfig::default())),
        Some(Value::Float(f)) => *f,
        Some(Value::UInt(n)) => *n as f64,
        Some(other) => {
            return Err(fault(
                ErrorCode::BadRequest,
                format!(
                    "param `fuzzy_map` must be a boolean or number, got {}",
                    other.kind()
                ),
            ))
        }
    };
    if !(threshold > 0.0 && threshold <= 1.0) {
        return Err(fault(
            ErrorCode::BadRequest,
            format!("param `fuzzy_map` threshold {threshold} outside (0, 1]"),
        ));
    }
    Ok(Some(FuzzyConfig { threshold }))
}

/// `estimate.cpi` replays per-simpoint trace slices cut at exact
/// marker boundaries, which the fuzzy fallback's instruction-offset
/// windows do not follow — so the method is exact-lane only. Called by
/// both the daemon and the cluster router so the rejection is
/// byte-identical wherever it is produced.
pub(crate) fn reject_fuzzy_estimate(spec: &PipelineSpec) -> Result<(), Fault> {
    if spec.config.fuzzy.is_some() {
        return Err(fault(
            ErrorCode::BadRequest,
            "estimate.cpi does not accept `fuzzy_map` (slice replay follows exact marker \
             boundaries; evaluate fuzzy lanes with `experiments accuracy-gate --fuzzy`)",
        ));
    }
    Ok(())
}

/// Resolves `params` for one of the pipeline-shaped methods: compiles
/// the benchmark's four binaries and derives the stage keys. Runs on
/// the connection thread — costs microseconds, and produces the
/// content digests admission needs for single-flight deduplication
/// (and the cluster router needs for shard selection — see
/// [`crate::route`]). A free function on purpose: routing a request
/// must not require opening a store.
pub(crate) fn prepare_spec(params: &Value, detail_allowed: bool) -> Result<PipelineSpec, Fault> {
    let benchmark = param_str(params, "benchmark")?;
    let Some(workload) = workloads::by_name(&benchmark) else {
        return Err(fault(
            ErrorCode::BadRequest,
            format!("unknown benchmark `{benchmark}` (try the `cbsp list` command)"),
        ));
    };
    let (scale, scale_name, input) = match param_str_or(params, "scale", "train")?.as_str() {
        "test" => (Scale::Test, "test", Input::test()),
        "train" => (Scale::Train, "train", Input::train()),
        "ref" | "reference" => (Scale::Reference, "ref", Input::reference()),
        other => {
            return Err(fault(
                ErrorCode::BadRequest,
                format!("bad scale `{other}` (test|train|ref)"),
            ))
        }
    };
    let default = CbspConfig::default();
    let interval = param_u64_or(params, "interval", default.interval_target)?;
    if interval == 0 {
        return Err(fault(ErrorCode::BadRequest, "param `interval` must be > 0"));
    }
    let estimator_tag = param_str_or(params, "estimator", "bbv")?;
    let Some(estimator) = EstimatorConfig::parse(&estimator_tag) else {
        return Err(fault(
            ErrorCode::BadRequest,
            format!(
                "bad estimator `{estimator_tag}` ({})",
                EstimatorConfig::KNOWN_TAGS.join("|")
            ),
        ));
    };
    let detail_full = match param_str_or(params, "detail", "summary")?.as_str() {
        "summary" => false,
        "full" if detail_allowed => true,
        "full" => {
            return Err(fault(
                ErrorCode::BadRequest,
                "param `detail` is only accepted by pipeline.run",
            ))
        }
        other => {
            return Err(fault(
                ErrorCode::BadRequest,
                format!("bad detail `{other}` (summary|full)"),
            ))
        }
    };

    let program = workload.build(scale);
    let binaries: Vec<Binary> = CompileTarget::ALL_FOUR
        .iter()
        .map(|&t| compile(&program, t))
        .collect();
    let config = CbspConfig {
        interval_target: interval,
        estimator,
        fuzzy: param_fuzzy(params)?,
        ..default
    };
    let refs: Vec<&Binary> = binaries.iter().collect();
    let keys = pipeline_keys(&refs, &input, &config).map_err(internal)?;
    Ok(PipelineSpec {
        benchmark,
        scale_name,
        input,
        config,
        binaries,
        keys,
        detail_full,
    })
}

impl Engine {
    pub fn new(store: Arc<ArtifactStore>, threads: usize) -> Engine {
        Engine {
            traces: cbsp_store::TraceCache::shared(Arc::clone(&store)),
            store,
            threads,
            runs: Mutex::new(ResultCache::default()),
            result_hits: AtomicU64::new(0),
            result_misses: AtomicU64::new(0),
        }
    }

    /// Runs the cached pipeline for `spec` with `threads` worker
    /// threads, cancelling at stage boundaries once `deadline` passes.
    pub fn execute_pipeline(
        &self,
        spec: &PipelineSpec,
        threads: usize,
        deadline: Instant,
    ) -> Reply {
        let run = self.run_cross(spec, threads, deadline)?;
        let mut fields = summary_fields(spec, &run);
        if spec.detail_full {
            fields.push((
                "result".to_string(),
                serde_json::to_value(&run.cross).expect("result serializes"),
            ));
        }
        Ok(Value::Object(fields))
    }

    /// Runs the pipeline, then computes each binary's true and
    /// SimPoint-estimated CPI from its per-simpoint trace slices: warm
    /// requests replay kilobytes of slice payload instead of the full
    /// recorded trace (see DESIGN.md "Sliced traces").
    pub fn execute_estimate(&self, spec: &PipelineSpec, deadline: Instant) -> Reply {
        let run = self.run_cross(spec, self.threads, deadline)?;
        let cross = &run.cross;
        let pool = Pool::new(self.threads);
        let mem = MemoryConfig::default();
        let n = cross.interval_count();
        let estimates = pool.run_indexed(spec.binaries.len(), |b| {
            self.traces.estimate_cpi_sliced(
                &spec.binaries[b],
                &spec.input,
                &mem,
                &cross.boundaries[b],
                &cross.simpoint.points,
                Some(&cross.weights[b]),
                n,
            )
        });
        let mut binaries = Vec::with_capacity(spec.binaries.len());
        for (b, est) in estimates.into_iter().enumerate() {
            let est = est.map_err(internal)?;
            // Zero for single-representative lanes by construction; the
            // stratified lane reports its half-width (see DESIGN.md).
            let ci_half = cbsp_core::stratified_ci(
                &cross.simpoint.points,
                &cross.simpoint.labels,
                &cross.weights[b],
                &est.interval_cpis,
            );
            binaries.push(obj(vec![
                ("label", Value::Str(spec.binaries[b].label())),
                ("true_cpi", Value::Float(est.true_cpi)),
                ("estimated_cpi", Value::Float(est.estimated_cpi)),
                (
                    "rel_error",
                    Value::Float(if est.true_cpi > 0.0 {
                        (est.estimated_cpi - est.true_cpi).abs() / est.true_cpi
                    } else {
                        0.0
                    }),
                ),
                ("ci_half", Value::Float(ci_half)),
            ]));
        }
        let mut fields = summary_fields(spec, &run);
        fields.push(("binaries".to_string(), Value::Array(binaries)));
        Ok(Value::Object(fields))
    }

    /// Pure store lookup: derive the simpoint stage key and probe the
    /// store. Never compiles a stage, so a miss answers in microseconds.
    pub fn execute_simpoints(&self, spec: &PipelineSpec) -> Reply {
        let key = &spec.keys.simpoint;
        let ns = stage_namespaces(&spec.config.estimator, spec.config.fuzzy.is_some());
        let found = match self.store.get::<SimPointResult>(&ns.simpoint, key) {
            Ok(found) => found,
            Err(CbspError::ArtifactCorrupt { .. } | CbspError::ArtifactVersionMismatch { .. }) => {
                None
            }
            Err(other) => return Err(internal(other)),
        };
        Ok(obj(vec![
            ("benchmark", Value::Str(spec.benchmark.clone())),
            ("scale", Value::Str(spec.scale_name.to_string())),
            ("interval", Value::UInt(spec.config.interval_target)),
            ("key", Value::Str(key.as_hex().to_string())),
            ("found", Value::Bool(found.is_some())),
            (
                "simpoint",
                found.map_or(Value::Null, |s| {
                    serde_json::to_value(&s).expect("simpoint serializes")
                }),
            ),
        ]))
    }

    /// Store usage, with the trace and sliced-trace namespaces split
    /// out from the pipeline stages (trace payloads dwarf stage
    /// artifacts and are evicted by `gc`, so lumping them together
    /// hides both facts).
    pub fn execute_store_stats(&self) -> Reply {
        let stats = self.store.stats().map_err(internal)?;
        let traces = stats
            .per_stage
            .get(cbsp_store::TRACE_STAGE)
            .cloned()
            .unwrap_or_default();
        let slices = stats
            .per_stage
            .get(cbsp_store::TRACE_SLICE_STAGE)
            .cloned()
            .unwrap_or_default();
        let sub = |stage: &cbsp_store::StageStats| {
            obj(vec![
                ("artifacts", Value::UInt(stage.artifacts)),
                ("bytes", Value::UInt(stage.bytes)),
            ])
        };
        let pipeline = cbsp_store::StageStats {
            artifacts: stats.artifacts - traces.artifacts - slices.artifacts,
            bytes: stats.bytes - traces.bytes - slices.bytes,
        };
        Ok(obj(vec![
            ("artifacts", Value::UInt(stats.artifacts)),
            ("bytes", Value::UInt(stats.bytes)),
            ("manifests", Value::UInt(stats.manifests)),
            ("pipeline", sub(&pipeline)),
            ("traces", sub(&traces)),
            ("trace_slices", sub(&slices)),
            (
                "formats",
                obj(vec![
                    (
                        "json",
                        sub(&stats.per_format.get("json").cloned().unwrap_or_default()),
                    ),
                    (
                        "blob",
                        sub(&stats.per_format.get("blob").cloned().unwrap_or_default()),
                    ),
                ]),
            ),
            (
                "per_stage",
                Value::Object(
                    stats
                        .per_stage
                        .iter()
                        .map(|(k, v)| (k.clone(), sub(v)))
                        .collect(),
                ),
            ),
        ]))
    }

    /// The global [`cbsp_trace`] snapshot (counters/gauges/spans).
    pub fn execute_trace_snapshot(&self) -> Reply {
        let metrics = serde_json::parse(&cbsp_trace::metrics_json())
            .map_err(|e| fault(ErrorCode::Internal, format!("snapshot encode: {e}")))?;
        Ok(obj(vec![
            ("enabled", Value::Bool(cbsp_trace::enabled())),
            ("metrics", metrics),
        ]))
    }

    /// Runs (or recalls) the cross-binary pipeline for `spec`.
    ///
    /// The map-stage key is a digest over the binaries, input, and
    /// config, and the pipeline is deterministic at any thread count,
    /// so a cached run is byte-for-byte what a recomputation would
    /// produce — the cache can ignore `threads` and `deadline`.
    fn run_cross(
        &self,
        spec: &PipelineSpec,
        threads: usize,
        deadline: Instant,
    ) -> Result<Arc<CachedRun>, Fault> {
        use std::sync::atomic::Ordering;
        let cache_key = spec.keys.map.as_hex().to_string();
        if let Some(hit) = {
            let cache = self.runs.lock().expect("result cache lock");
            cache.entries.get(&cache_key).cloned()
        } {
            self.result_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.result_misses.fetch_add(1, Ordering::Relaxed);

        let config = CbspConfig {
            simpoint: cbsp_simpoint::SimPointConfig {
                threads,
                ..spec.config.simpoint
            },
            ..spec.config
        };
        let orch = Orchestrator::new(&self.store, CachePolicy::ReadWrite)
            .with_cancel(Arc::new(move || Instant::now() >= deadline));
        let refs: Vec<&Binary> = spec.binaries.iter().collect();
        let description = format!("serve: {}/{}", spec.benchmark, spec.scale_name);
        let (cross, report) = orch
            .run_cross_binary(&refs, &spec.input, &config, &description)
            .map_err(|e| match e {
                CbspError::Cancelled { stage } => fault(
                    ErrorCode::Timeout,
                    format!("deadline passed at the {stage} stage boundary"),
                ),
                other => internal(other),
            })?;
        let run = Arc::new(CachedRun {
            result_hash: content_hash(&cross),
            cross,
            report,
        });

        let mut cache = self.runs.lock().expect("result cache lock");
        let ResultCache {
            order,
            entries: map,
        } = &mut *cache;
        // A racing worker may have inserted the same key between our
        // lookup and here; both values are identical, last one wins.
        if map.insert(cache_key.clone(), Arc::clone(&run)).is_none() {
            order.push_back(cache_key);
            while map.len() > RESULT_CACHE_CAP {
                let Some(evict) = order.pop_front() else {
                    break;
                };
                map.remove(&evict);
            }
        }
        Ok(run)
    }
}

/// The summary fields shared by `pipeline.run` and `estimate.cpi`
/// responses, in fixed order. The `cache` hits/misses describe the
/// store traffic of the run that *computed* this result — a
/// result-cache hit replays them unchanged, keeping responses
/// byte-identical.
fn summary_fields(spec: &PipelineSpec, run: &CachedRun) -> Vec<(String, Value)> {
    let cross = &run.cross;
    let report = &run.report;
    let mut pairs = vec![
        ("benchmark", Value::Str(spec.benchmark.clone())),
        ("scale", Value::Str(spec.scale_name.to_string())),
        ("interval", Value::UInt(spec.config.interval_target)),
        ("estimator", Value::Str(spec.config.estimator.tag())),
        ("run_key", Value::Str(report.run_key.clone())),
        ("result_hash", Value::Str(run.result_hash.clone())),
        ("k", Value::UInt(cross.simpoint.k as u64)),
        ("points", Value::UInt(cross.simpoint.points.len() as u64)),
        ("intervals", Value::UInt(cross.interval_count() as u64)),
        (
            "cache",
            obj(vec![
                ("hits", Value::UInt(report.hits() as u64)),
                ("misses", Value::UInt(report.misses() as u64)),
            ]),
        ),
    ];
    // Appended only on fuzzy runs, so exact-lane responses stay
    // byte-identical to pre-fuzzy builds (docs/PROTOCOL.md).
    if let Some(fuzzy) = &spec.config.fuzzy {
        let stats = mapping_stats(&cross.mappings);
        pairs.push(("fuzzy_map", Value::Float(fuzzy.threshold)));
        pairs.push((
            "mapping",
            obj(vec![
                ("exact", Value::UInt(stats.exact as u64)),
                ("fuzzy", Value::UInt(stats.fuzzy as u64)),
                ("unmapped", Value::UInt(stats.unmapped as u64)),
                ("mean_confidence", Value::Float(stats.mean_confidence)),
                ("mapped_fraction", Value::Float(stats.mapped_fraction())),
            ]),
        ));
    }
    pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
}

fn internal(e: impl std::fmt::Display) -> Fault {
    fault(ErrorCode::Internal, format!("{e}"))
}
