//! Property test: no frame a client can send — random bytes, truncated
//! JSON, wrong shapes — crashes a connection or a worker. Every
//! malformed frame yields a typed protocol error, and the connection
//! keeps serving afterwards.

use cbsp_serve::{ServeConfig, Server};
use proptest::collection::vec;
use proptest::prelude::*;
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

/// One server for the whole property run; never drained (the test
/// process exits with it).
fn server_addr() -> SocketAddr {
    static SERVER: OnceLock<Server> = OnceLock::new();
    SERVER
        .get_or_init(|| {
            let dir = std::env::temp_dir().join(format!("cbsp-serve-fuzz-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            Server::start(ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                threads: 1,
                cache_dir: dir,
                ..ServeConfig::default()
            })
            .expect("server starts")
        })
        .addr()
}

fn roundtrip(frame: &str) -> String {
    let stream = TcpStream::connect(server_addr()).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout set");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer
        .write_all(frame.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .expect("frame written");
    let mut line = String::new();
    reader.read_line(&mut line).expect("response read");
    let response = line.trim_end().to_string();

    // The connection must survive the bad frame: a ping on the same
    // connection still answers.
    writer
        .write_all(b"{\"id\":\"after\",\"method\":\"ping\"}\n")
        .expect("ping written");
    line.clear();
    reader.read_line(&mut line).expect("ping response read");
    assert_eq!(
        line.trim_end(),
        r#"{"id":"after","ok":true,"v":1,"result":{"pong":true}}"#
    );
    response
}

const KNOWN_CODES: [&str; 6] = [
    "parse",
    "bad_request",
    "overloaded",
    "timeout",
    "shutting_down",
    "internal",
];

/// Asserts the response to a (presumed malformed) frame is a typed
/// protocol error. `ok:true` is also tolerated — a random string *can*
/// spell a valid request — but anything else fails.
fn assert_typed(frame: &str) {
    let response = roundtrip(frame);
    let value: Value = serde_json::parse(&response)
        .unwrap_or_else(|e| panic!("unparseable response {response}: {e}"));
    let get = |key: &str| {
        value
            .as_object()
            .and_then(|p| p.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    };
    match get("ok") {
        Some(Value::Bool(true)) => {}
        Some(Value::Bool(false)) => {
            let code = get("error")
                .and_then(Value::as_object)
                .and_then(|p| p.iter().find(|(k, _)| k == "code"))
                .map(|(_, v)| v.clone());
            assert!(
                matches!(&code, Some(Value::Str(c)) if KNOWN_CODES.contains(&c.as_str())),
                "unknown error code {code:?} in {response}"
            );
        }
        other => panic!("response has no boolean ok ({other:?}): {response}"),
    }
}

/// A frame that is sendable as one line and not silently skipped as
/// blank.
fn sendable(s: &str) -> bool {
    !s.contains('\n') && !s.contains('\r') && !s.trim().is_empty()
}

proptest! {
    /// Arbitrary text frames: typed error (or, for the rare accidental
    /// valid request, a success) — never a hang, never a dead worker.
    #[test]
    fn random_frames_yield_typed_errors(chars in vec(any::<char>(), 1..60)) {
        let frame: String = chars.into_iter().collect();
        prop_assume!(sendable(&frame));
        // An accidental HTTP request line switches the connection's
        // dialect; that path is covered by the lifecycle tests.
        prop_assume!(!frame.starts_with("GET "));
        assert_typed(&frame);
    }

    /// Every proper prefix of a valid request is a parse error — a
    /// truncated frame can never execute or panic anything.
    #[test]
    fn truncated_requests_yield_typed_errors(cut in 1usize..94) {
        let full = r#"{"id":1,"method":"pipeline.run","params":{"benchmark":"gzip","scale":"test","interval":20000}}"#;
        prop_assume!(cut < full.len());
        let frame = &full[..cut];
        prop_assume!(sendable(frame));
        assert_typed(frame);
    }

    /// JSON that parses but has the wrong shape is `bad_request`, with
    /// the id echoed when one was present.
    #[test]
    fn wrong_shapes_yield_bad_request(id in 0u64..1000) {
        let frame = format!(r#"{{"id":{id},"method":42}}"#);
        let response = roundtrip(&frame);
        prop_assert!(
            response.contains(r#""code":"bad_request""#),
            "expected bad_request: {response}"
        );
        prop_assert!(
            response.starts_with(&format!(r#"{{"id":{id},"#)),
            "id not echoed: {response}"
        );
    }
}
