//! Replays the verified examples in `docs/PROTOCOL.md` against a
//! fresh daemon, byte for byte, in document order.
//!
//! The spec's examples are marked with `<!-- verify: request -->` /
//! `<!-- verify: response -->` comments, each followed by a fenced
//! ```json block holding exactly one frame. This test extracts the
//! pairs and asserts the daemon's responses match the documented
//! bytes, so the protocol document cannot drift from the
//! implementation without failing CI.

use cbsp_serve::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One documented request/response pair, with the line the request
/// marker sits on (for failure messages).
struct Example {
    line: usize,
    request: String,
    response: String,
}

/// Pulls the single frame out of the ```json fence that must follow a
/// verify marker.
fn fenced_frame<'a>(
    lines: &mut impl Iterator<Item = (usize, &'a str)>,
    marker_line: usize,
) -> String {
    let Some((_, fence)) = lines.next() else {
        panic!("verify marker at line {marker_line} is not followed by a fence");
    };
    assert_eq!(
        fence.trim(),
        "```json",
        "verify marker at line {marker_line} must be followed by a ```json fence"
    );
    let mut frame = None;
    for (n, line) in lines.by_ref() {
        if line.trim() == "```" {
            return frame.unwrap_or_else(|| panic!("empty verify fence after line {marker_line}"));
        }
        assert!(
            frame.is_none(),
            "verify fence after line {marker_line} holds more than one line (line {n}) — \
             frames are newline-delimited, one per example"
        );
        frame = Some(line.to_string());
    }
    panic!("unterminated verify fence after line {marker_line}");
}

fn extract_examples(doc: &str) -> Vec<Example> {
    let mut lines = doc.lines().enumerate();
    let mut examples = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    while let Some((n, line)) = lines.next() {
        match line.trim() {
            "<!-- verify: request -->" => {
                assert!(
                    pending.is_none(),
                    "request marker at line {} has no response marker before line {}",
                    pending.as_ref().map_or(0, |(m, _)| m + 1),
                    n + 1
                );
                pending = Some((n + 1, fenced_frame(&mut lines, n + 1)));
            }
            "<!-- verify: response -->" => {
                let (line, request) = pending
                    .take()
                    .unwrap_or_else(|| panic!("response marker at line {} has no request", n + 1));
                examples.push(Example {
                    line,
                    request,
                    response: fenced_frame(&mut lines, n + 1),
                });
            }
            _ => {}
        }
    }
    assert!(
        pending.is_none(),
        "trailing request marker without response"
    );
    examples
}

/// Rewrites every `verify: response` fence in `docs/PROTOCOL.md` with
/// the live daemon's bytes for the preceding documented request —
/// requests and prose are left untouched. Run manually after a
/// protocol (or cache-key) change:
///
/// ```text
/// cargo test -p cbsp-serve --test protocol_doc -- --ignored
/// ```
///
/// then review the diff and re-run the non-ignored replay test.
#[test]
#[ignore = "rewrites docs/PROTOCOL.md from live responses"]
fn regenerate_documented_responses() {
    let doc_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/PROTOCOL.md");
    let doc = std::fs::read_to_string(doc_path).expect("docs/PROTOCOL.md readable");

    let dir = std::env::temp_dir().join(format!("cbsp-protocol-regen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        cache_dir: dir.clone(),
        ..ServeConfig::default()
    })
    .expect("server starts");
    let stream = TcpStream::connect(server.addr()).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(300)))
        .expect("timeout set");
    let mut writer = stream.try_clone().expect("stream clones");
    let mut reader = BufReader::new(stream);

    let mut out = String::new();
    let mut lines = doc.lines().peekable();
    let mut pending: Option<String> = None;
    while let Some(line) = lines.next() {
        out.push_str(line);
        out.push('\n');
        let capture = match line.trim() {
            "<!-- verify: request -->" => false,
            "<!-- verify: response -->" => true,
            _ => continue,
        };
        let fence = lines.next().expect("fence after marker");
        assert_eq!(
            fence.trim(),
            "```json",
            "marker must be followed by ```json"
        );
        out.push_str(fence);
        out.push('\n');
        let mut frame = String::new();
        for body in lines.by_ref() {
            if body.trim() == "```" {
                break;
            }
            frame.push_str(body);
        }
        if capture {
            let request = pending.take().expect("response fence without a request");
            writer
                .write_all(request.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .expect("request written");
            let mut response = String::new();
            reader.read_line(&mut response).expect("response read");
            out.push_str(response.trim_end());
        } else {
            pending = Some(frame.clone());
            out.push_str(&frame);
        }
        out.push_str("\n```\n");
    }
    assert!(pending.is_none(), "trailing request without a response");

    if out != doc {
        std::fs::write(doc_path, out).expect("docs/PROTOCOL.md written");
    }
    server.wait().expect("clean drain");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn documented_examples_are_served_byte_for_byte() {
    let doc_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/PROTOCOL.md");
    let doc = std::fs::read_to_string(doc_path).expect("docs/PROTOCOL.md readable");
    let examples = extract_examples(&doc);
    assert!(
        examples.len() >= 10,
        "PROTOCOL.md documents at least ten verified examples, found {}",
        examples.len()
    );

    let dir = std::env::temp_dir().join(format!("cbsp-protocol-doc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        cache_dir: dir.clone(),
        ..ServeConfig::default()
    })
    .expect("server starts");

    let stream = TcpStream::connect(server.addr()).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(300)))
        .expect("timeout set");
    let mut writer = stream.try_clone().expect("stream clones");
    let mut reader = BufReader::new(stream);
    let mut drained = false;
    for example in &examples {
        writer
            .write_all(example.request.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .expect("request written");
        let mut line = String::new();
        reader.read_line(&mut line).expect("response read");
        assert_eq!(
            line.trim_end(),
            example.response,
            "response drifted from the example documented at PROTOCOL.md line {} \
             (request: {})",
            example.line,
            example.request
        );
        drained |= example.request.contains("server.shutdown");
    }
    assert!(
        drained,
        "the document must end by verifying a graceful shutdown"
    );
    server.wait().expect("clean drain");
    let _ = std::fs::remove_dir_all(&dir);
}
