//! End-to-end tests of the daemon: lifecycle, mixed queries,
//! single-flight deduplication observed through `/metrics`, typed
//! backpressure, deadline enforcement, graceful drain, and
//! byte-identity of served results across thread counts.

use cbsp_serve::{ServeConfig, Server};
use serde::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cbsp-serve-test-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(tag: &str, configure: impl FnOnce(&mut ServeConfig)) -> (Server, SocketAddr, PathBuf) {
    let dir = temp_dir(tag);
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        cache_dir: dir.clone(),
        default_timeout_ms: 120_000,
        workers: 1,
        ..ServeConfig::default()
    };
    configure(&mut cfg);
    let server = Server::start(cfg).expect("server starts");
    let addr = server.addr();
    (server, addr, dir)
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(300)))
            .expect("timeout set");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    /// Sends one frame without waiting for the response.
    fn send(&mut self, frame: &str) {
        self.writer
            .write_all(frame.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .expect("request written");
    }

    /// Reads one response line (without newline).
    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("response read");
        line.trim_end().to_string()
    }

    /// Sends one frame and reads one response line (without newline).
    fn request(&mut self, frame: &str) -> String {
        self.send(frame);
        self.recv()
    }
}

fn one_shot(addr: SocketAddr, frame: &str) -> String {
    Client::connect(addr).request(frame)
}

/// Plain HTTP GET; returns the response body.
fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout set");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("request written");
    let mut text = String::new();
    BufReader::new(stream)
        .read_to_string(&mut text)
        .expect("response read");
    let (_headers, body) = text.split_once("\r\n\r\n").expect("has body");
    body.to_string()
}

fn field<'a>(value: &'a Value, path: &str) -> &'a Value {
    let mut cur = value;
    for part in path.split('.') {
        cur = cur
            .as_object()
            .and_then(|p| p.iter().find(|(k, _)| k == part))
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field {part} of {path}"));
    }
    cur
}

fn parse(frame: &str) -> Value {
    serde_json::parse(frame).unwrap_or_else(|e| panic!("bad frame {frame}: {e}"))
}

/// Polls `/metrics` until the daemon reports a request executing, so
/// assertions that need a provably occupied worker don't depend on
/// sleeps calibrated to one build profile. Panics if nothing starts
/// within ~10 s.
fn wait_until_executing(addr: SocketAddr) {
    for _ in 0..5_000 {
        let metrics = parse(&http_get(addr, "/metrics"));
        if matches!(field(&metrics, "serve.executing"), Value::UInt(n) if *n >= 1) {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("busy request never started executing");
}

fn assert_ok(frame: &str) -> Value {
    let v = parse(frame);
    assert_eq!(field(&v, "ok"), &Value::Bool(true), "not ok: {frame}");
    assert_eq!(field(&v, "v"), &Value::UInt(1));
    v
}

fn error_code(frame: &str) -> String {
    let v = parse(frame);
    assert_eq!(
        field(&v, "ok"),
        &Value::Bool(false),
        "not an error: {frame}"
    );
    match field(&v, "error.code") {
        Value::Str(s) => s.clone(),
        other => panic!("error.code not a string: {other:?}"),
    }
}

#[test]
fn mixed_queries_singleflight_and_metrics() {
    let (server, addr, dir) = start("mixed", |_| {});

    // Health and liveness first.
    assert_eq!(
        one_shot(addr, r#"{"id":1,"method":"ping"}"#),
        r#"{"id":1,"ok":true,"v":1,"result":{"pong":true}}"#
    );
    assert!(http_get(addr, "/healthz").contains("\"status\":\"ok\""));
    assert!(http_get(addr, "/nope").contains("not found"));

    // Occupy the single worker with a cold pipeline, then submit two
    // identical requests back to back on pre-opened connections: the
    // second finds the first in flight — queued behind the busy
    // worker, or already executing — and joins it. (Even if the
    // occupying run finishes first, the twin executes for
    // milliseconds while its duplicate arrives in microseconds.)
    let occupy = std::thread::spawn(move || {
        one_shot(
            addr,
            r#"{"id":"a","method":"pipeline.run","params":{"benchmark":"swim","scale":"test","interval":20000}}"#,
        )
    });
    wait_until_executing(addr);
    let twin = r#"{"id":"g","method":"pipeline.run","params":{"benchmark":"gzip","scale":"test","interval":20000}}"#;
    let mut c1 = Client::connect(addr);
    let mut c2 = Client::connect(addr);
    c1.send(twin);
    c2.send(twin);
    let (first, second) = (c1.recv(), c2.recv());
    assert_ok(&occupy.join().expect("occupy"));
    assert_ok(&first);
    // Single flight: one execution, byte-identical responses.
    assert_eq!(first, second);

    let metrics = parse(&http_get(addr, "/metrics"));
    let hits = match field(&metrics, "serve.singleflight_hits") {
        Value::UInt(n) => *n,
        other => panic!("singleflight_hits: {other:?}"),
    };
    assert!(hits >= 1, "expected a single-flight hit, got {hits}");

    // The pipeline just ran, so its simpoint artifact is findable by
    // derived key without executing anything.
    let sp = assert_ok(&one_shot(
        addr,
        r#"{"id":2,"method":"simpoints.get","params":{"benchmark":"gzip","scale":"test","interval":20000}}"#,
    ));
    assert_eq!(field(&sp, "result.found"), &Value::Bool(true));
    assert!(matches!(field(&sp, "result.simpoint.k"), Value::UInt(k) if *k >= 1));

    // A different interval has a different key and is absent.
    let miss = assert_ok(&one_shot(
        addr,
        r#"{"id":3,"method":"simpoints.get","params":{"benchmark":"gzip","scale":"test","interval":19999}}"#,
    ));
    assert_eq!(field(&miss, "result.found"), &Value::Bool(false));

    // Store stats split pipeline artifacts from the trace namespace.
    let stats = assert_ok(&one_shot(addr, r#"{"id":4,"method":"store.stats"}"#));
    assert!(matches!(field(&stats, "result.artifacts"), Value::UInt(n) if *n > 0));
    assert!(matches!(field(&stats, "result.pipeline.artifacts"), Value::UInt(n) if *n > 0));
    field(&stats, "result.traces.artifacts");

    // CPI estimation over the warm store: four binaries, sane errors.
    let est = assert_ok(&one_shot(
        addr,
        r#"{"id":5,"method":"estimate.cpi","params":{"benchmark":"gzip","scale":"test","interval":20000}}"#,
    ));
    let binaries = field(&est, "result.binaries").as_array().expect("array");
    assert_eq!(binaries.len(), 4);
    for b in binaries {
        assert!(matches!(field(b, "true_cpi"), Value::Float(c) if *c > 0.0));
        assert!(matches!(field(b, "estimated_cpi"), Value::Float(c) if *c > 0.0));
    }

    let snap = assert_ok(&one_shot(addr, r#"{"id":6,"method":"trace.snapshot"}"#));
    field(&snap, "result.enabled");

    // Typed failures.
    assert_eq!(
        error_code(&one_shot(addr, r#"{"id":7,"method":"no.such"}"#)),
        "bad_request"
    );
    assert_eq!(
        error_code(&one_shot(
            addr,
            r#"{"id":8,"method":"pipeline.run","params":{"benchmark":"not-a-benchmark"}}"#
        )),
        "bad_request"
    );
    assert_eq!(error_code(&one_shot(addr, "{{{")), "parse");
    // An expired deadline is reported as `timeout`, not executed.
    assert_eq!(
        error_code(&one_shot(
            addr,
            r#"{"id":9,"method":"pipeline.run","params":{"benchmark":"mcf","scale":"test","interval":20000},"timeout_ms":0}"#
        )),
        "timeout"
    );

    server.shutdown();
    server.wait().expect("clean drain");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn overload_is_rejected_with_typed_error() {
    let (server, addr, dir) = start("overload", |cfg| {
        cfg.max_inflight = 1;
    });
    // Fill the single admission slot with a cold ref-scale pipeline —
    // heavy enough that it is still executing when the probe below
    // lands, in any build profile…
    let busy = std::thread::spawn(move || {
        one_shot(
            addr,
            r#"{"id":"busy","method":"pipeline.run","params":{"benchmark":"swim","scale":"ref","interval":2000}}"#,
        )
    });
    wait_until_executing(addr);
    // …then any queued method must be refused, not delayed.
    assert_eq!(
        error_code(&one_shot(addr, r#"{"id":1,"method":"store.stats"}"#)),
        "overloaded"
    );
    assert_ok(&busy.join().expect("busy"));
    server.shutdown();
    server.wait().expect("clean drain");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn graceful_drain_completes_inflight_work() {
    let (server, addr, dir) = start("drain", |_| {});
    // A cold ref-scale request goes in flight (heavy enough to still
    // be executing when the drain order arrives, in any profile)…
    let inflight = std::thread::spawn(move || {
        one_shot(
            addr,
            r#"{"id":"w","method":"pipeline.run","params":{"benchmark":"swim","scale":"ref","interval":2000}}"#,
        )
    });
    wait_until_executing(addr);

    // …the server is told to drain…
    let mut ctl = Client::connect(addr);
    let bye = assert_ok(&ctl.request(r#"{"id":"s","method":"server.shutdown"}"#));
    assert_eq!(field(&bye, "result.draining"), &Value::Bool(true));

    // …the in-flight request still completes…
    assert_ok(&inflight.join().expect("inflight"));

    // …new work on a surviving connection is refused…
    assert_eq!(
        error_code(&ctl.request(
            r#"{"id":"n","method":"pipeline.run","params":{"benchmark":"gzip","scale":"test"}}"#
        )),
        "shutting_down"
    );

    // …and the server winds down cleanly.
    server.wait().expect("clean drain");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn results_are_byte_identical_across_thread_counts() {
    let request = r#"{"id":"x","method":"pipeline.run","params":{"benchmark":"equake","scale":"test","interval":20000,"detail":"full"}}"#;
    let mut frames = Vec::new();
    for threads in [1usize, 3] {
        let (server, addr, dir) = start("threads", |cfg| {
            cfg.threads = threads;
        });
        frames.push(one_shot(addr, request));
        server.shutdown();
        server.wait().expect("clean drain");
        let _ = std::fs::remove_dir_all(dir);
    }
    assert_ok(&frames[0]);
    // Different servers, different thread budgets, fresh stores: the
    // full embedded CrossBinaryResult must not differ by a byte.
    assert_eq!(frames[0], frames[1]);

    // And the served result matches what the library computes directly
    // (the CLI path): same content hash.
    let dir = temp_dir("local");
    let store = cbsp_store::ArtifactStore::open(&dir).expect("store opens");
    let program = cbsp_program::workloads::by_name("equake")
        .expect("in suite")
        .build(cbsp_program::Scale::Test);
    let binaries: Vec<_> = cbsp_program::CompileTarget::ALL_FOUR
        .iter()
        .map(|&t| cbsp_program::compile(&program, t))
        .collect();
    let config = cbsp_core::CbspConfig {
        interval_target: 20_000,
        ..cbsp_core::CbspConfig::default()
    };
    let (cross, _report) = cbsp_store::Orchestrator::new(&store, cbsp_store::CachePolicy::Bypass)
        .run_cross_binary(
            &binaries.iter().collect::<Vec<_>>(),
            &cbsp_program::Input::test(),
            &config,
            "test: local reference",
        )
        .expect("pipeline runs");
    let served = assert_ok(&frames[0]);
    assert_eq!(
        field(&served, "result.result_hash"),
        &Value::Str(cbsp_store::content_hash(&cross)),
    );
    let _ = std::fs::remove_dir_all(dir);
}
