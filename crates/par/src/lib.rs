//! # cbsp-par — scoped thread pool with deterministic reduction
//!
//! The workspace's shared parallel substrate. Every hot path that fans
//! out — the k×restart clustering grid, per-binary profiling, the
//! Lloyd assignment loop, per-binary detailed simulation — goes through
//! this crate instead of hand-rolled `std::thread::scope` worker loops.
//!
//! Two design rules make the parallelism safe to use anywhere in the
//! pipeline:
//!
//! 1. **Determinism by construction.** Work is expressed as fixed-size
//!    chunks of an index range. Chunk boundaries depend only on the
//!    input size (never on the thread count), each chunk is folded
//!    serially, and partial results are merged *in chunk order* on the
//!    caller's thread. Floating-point reductions therefore associate
//!    identically at any thread count: `threads = 1` and `threads = 64`
//!    produce bit-identical results.
//! 2. **No unsafe, no dependencies.** Workers are scoped threads
//!    (`std::thread::scope`); results land in per-slot mutexes indexed
//!    by job id, so no ordering is ever inferred from completion order.
//!
//! A [`Pool`] is a lightweight handle (just a thread count); it spawns
//! scoped workers per parallel call. That makes it freely shareable and
//! nestable — inner code running on a worker can itself hold a serial
//! pool — at the cost of a per-call spawn (~tens of microseconds per
//! thread), which the intended call sites (whole k-means runs, whole
//! program simulations, Lloyd iterations over thousands of points)
//! amortize comfortably. Calls with a single chunk or a single job
//! run inline on the caller's thread, so small inputs never pay for
//! threads they cannot use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default number of index elements per chunk for chunked operations.
///
/// Fixed (never derived from the thread count) so that reduction trees
/// — and therefore floating-point results — are identical at any
/// parallelism level.
pub const DEFAULT_CHUNK: usize = 1024;

/// Number of worker threads the machine offers (≥ 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A shareable handle describing how much parallelism to use.
///
/// `Pool` is cheap to create and copy; it owns no threads. Each
/// parallel call spawns scoped workers for its own duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::auto()
    }
}

impl Pool {
    /// A pool with `threads` workers; `0` means
    /// [`available_threads()`].
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: if threads == 0 {
                available_threads()
            } else {
                threads
            },
        }
    }

    /// A pool sized to the machine.
    pub fn auto() -> Pool {
        Pool::new(0)
    }

    /// A single-threaded pool: every call runs inline on the caller.
    pub fn serial() -> Pool {
        Pool { threads: 1 }
    }

    /// Worker count (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` if this pool never spawns.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Splits `self.threads()` among `outer` concurrent callers: the
    /// pool an inner computation should use when `outer` of them run
    /// side by side (≥ 1 thread each).
    pub fn split(&self, outer: usize) -> Pool {
        Pool {
            threads: (self.threads / outer.max(1)).max(1),
        }
    }

    /// Runs `f(i)` for every `i` in `0..n` and returns the results in
    /// index order. Jobs are claimed dynamically by up to
    /// `min(threads, n)` scoped workers; with one worker (or one job)
    /// everything runs inline, in order, on the caller's thread.
    ///
    /// Each `f(i)` must be a pure function of `i` for the output to be
    /// deterministic — the pool guarantees placement, not purity.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job.
    pub fn run_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = f(i);
                    *slots[i].lock().expect("worker slot lock") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker slot lock")
                    .expect("every job ran")
            })
            .collect()
    }

    /// Splits `0..n` into [`chunk_ranges`]-style chunks of `chunk`
    /// elements, folds each chunk with `fold`, and returns the per-chunk
    /// results **in chunk order**.
    ///
    /// The chunk layout depends only on `(n, chunk)`, so any
    /// fold-then-merge built on top of this is bit-identical at every
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero; propagates panics from `fold`.
    pub fn map_chunks<A, F>(&self, n: usize, chunk: usize, fold: F) -> Vec<A>
    where
        A: Send,
        F: Fn(Range<usize>) -> A + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        let chunks = n.div_ceil(chunk);
        self.run_indexed(chunks, |c| {
            let start = c * chunk;
            fold(start..(start + chunk).min(n))
        })
    }

    /// Deterministic chunked reduction over `0..n`: folds each chunk
    /// serially with `fold`, then merges the partials in chunk order on
    /// the caller's thread. Returns `None` when `n == 0`.
    ///
    /// This is the reduction primitive behind the parallel Lloyd update
    /// step: per-chunk partial centroid sums merged left-to-right give
    /// the same floating-point sum regardless of which worker computed
    /// which chunk.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero; propagates panics from the closures.
    pub fn reduce_chunks<A, F, M>(&self, n: usize, chunk: usize, fold: F, mut merge: M) -> Option<A>
    where
        A: Send,
        F: Fn(Range<usize>) -> A + Sync,
        M: FnMut(A, A) -> A,
    {
        let mut partials = self.map_chunks(n, chunk, fold).into_iter();
        let first = partials.next()?;
        Some(partials.fold(first, &mut merge))
    }
}

/// The chunk layout [`Pool::map_chunks`] uses: consecutive
/// `chunk`-sized ranges covering `0..n` (last one possibly short).
pub fn chunk_ranges(n: usize, chunk: usize) -> impl Iterator<Item = Range<usize>> {
    assert!(chunk > 0, "chunk size must be positive");
    (0..n.div_ceil(chunk)).map(move |c| {
        let start = c * chunk;
        start..(start + chunk).min(n)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_preserves_order() {
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            let out = pool.run_indexed(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_indexed_handles_empty_and_single() {
        let pool = Pool::new(4);
        assert_eq!(pool.run_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.run_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn chunk_layout_is_thread_independent() {
        let ranges: Vec<_> = chunk_ranges(10, 4).collect();
        assert_eq!(ranges, vec![0..4, 4..8, 8..10]);
        assert_eq!(chunk_ranges(0, 4).count(), 0);
        assert_eq!(chunk_ranges(4, 4).collect::<Vec<_>>(), vec![0..4]);
    }

    #[test]
    fn reduction_is_bit_identical_across_thread_counts() {
        // A floating-point sum whose value depends on association
        // order: if chunking or merge order varied with the thread
        // count, these results would differ in the low bits.
        let values: Vec<f64> = (0..10_000)
            .map(|i| ((i * 2_654_435_761_usize) % 1_000_003) as f64 * 1e-7 + 1e9)
            .collect();
        let sum_with = |threads: usize| {
            Pool::new(threads)
                .reduce_chunks(
                    values.len(),
                    64,
                    |r| r.map(|i| values[i]).fold(0.0f64, |a, b| a + b),
                    |a, b| a + b,
                )
                .expect("nonempty")
        };
        let s1 = sum_with(1);
        for threads in [2, 3, 5, 8, 16] {
            assert_eq!(s1.to_bits(), sum_with(threads).to_bits());
        }
    }

    #[test]
    fn reduce_chunks_empty_is_none() {
        let pool = Pool::new(4);
        assert_eq!(
            pool.reduce_chunks(0, 8, |_| 0.0f64, |a: f64, b| a + b),
            None
        );
    }

    #[test]
    fn split_distributes_threads() {
        let pool = Pool::new(8);
        assert_eq!(pool.split(2).threads(), 4);
        assert_eq!(pool.split(3).threads(), 2);
        assert_eq!(pool.split(100).threads(), 1);
        assert_eq!(pool.split(0).threads(), 8);
    }

    #[test]
    fn zero_means_auto() {
        assert_eq!(Pool::new(0).threads(), available_threads());
        assert!(Pool::serial().is_serial());
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_panics() {
        let _ = Pool::serial().map_chunks(10, 0, |r| r.len());
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).run_indexed(16, |i| {
                if i == 7 {
                    panic!("job 7 exploded");
                }
                i
            })
        });
        assert!(result.is_err());
    }
}
