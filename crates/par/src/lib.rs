//! # cbsp-par — scoped thread pool with deterministic reduction
//!
//! The workspace's shared parallel substrate. Every hot path that fans
//! out — the k×restart clustering grid, per-binary profiling, the
//! Lloyd assignment loop, per-binary detailed simulation — goes through
//! this crate instead of hand-rolled `std::thread::scope` worker loops.
//!
//! Two design rules make the parallelism safe to use anywhere in the
//! pipeline:
//!
//! 1. **Determinism by construction.** Work is expressed as fixed-size
//!    chunks of an index range. Chunk boundaries depend only on the
//!    input size (never on the thread count), each chunk is folded
//!    serially, and partial results are merged *in chunk order* on the
//!    caller's thread. Floating-point reductions therefore associate
//!    identically at any thread count: `threads = 1` and `threads = 64`
//!    produce bit-identical results.
//! 2. **No unsafe, no dependencies.** Workers are scoped threads
//!    (`std::thread::scope`); results land in per-slot mutexes indexed
//!    by job id, so no ordering is ever inferred from completion order.
//!
//! A [`Pool`] is a lightweight handle (just a thread count); it spawns
//! scoped workers per parallel call. That makes it freely shareable and
//! nestable — inner code running on a worker can itself hold a serial
//! pool — at the cost of a per-call spawn (~tens of microseconds per
//! thread), which the intended call sites (whole k-means runs, whole
//! program simulations, Lloyd iterations over thousands of points)
//! amortize comfortably. Calls with a single chunk or a single job
//! run inline on the caller's thread, so small inputs never pay for
//! threads they cannot use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Estimated serial work, in nanoseconds, below which a parallel
/// fan-out costs more in scoped-thread spawn and queue overhead than
/// it can possibly save. The per-call spawn cost is on the order of
/// tens of microseconds per worker; one millisecond of total work is
/// the point where an 8-way fan-out reliably wins.
pub const PARALLEL_WORK_THRESHOLD_NS: u64 = 1_000_000;

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Default number of index elements per chunk for chunked operations.
///
/// Fixed (never derived from the thread count) so that reduction trees
/// — and therefore floating-point results — are identical at any
/// parallelism level.
pub const DEFAULT_CHUNK: usize = 1024;

/// Number of worker threads the machine offers (≥ 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A shareable handle describing how much parallelism to use.
///
/// `Pool` is cheap to create and copy; it owns no threads. Each
/// parallel call spawns scoped workers for its own duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::auto()
    }
}

impl Pool {
    /// A pool with `threads` workers; `0` means
    /// [`available_threads()`].
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: if threads == 0 {
                available_threads()
            } else {
                threads
            },
        }
    }

    /// A pool sized to the machine.
    pub fn auto() -> Pool {
        Pool::new(0)
    }

    /// A single-threaded pool: every call runs inline on the caller.
    pub fn serial() -> Pool {
        Pool { threads: 1 }
    }

    /// Worker count (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` if this pool never spawns.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Downgrades to a serial pool when a fan-out cannot pay for
    /// itself: either `estimated_serial_ns` of total work is too small
    /// to amortize the spawn/queue overhead (below
    /// [`PARALLEL_WORK_THRESHOLD_NS`]), or the machine offers a single
    /// hardware thread — workers can never actually run concurrently
    /// there, so a fan-out of any size only adds overhead. Otherwise
    /// returns `self` unchanged.
    ///
    /// Stages with statically predictable cost (e.g. compiling a
    /// source program whose statement count is known) use this to skip
    /// pool fan-out entirely instead of paying more in spawn and queue
    /// wait than the work itself costs — the `BENCH_simpoint.json`
    /// compile stage regression that motivated it ran 4 jobs of ~15 µs
    /// against ~100 µs of spawn overhead; the single-core gate fixed
    /// the same artifact's map stage on one-vCPU CI runners.
    pub fn for_work(&self, estimated_serial_ns: u64) -> Pool {
        if estimated_serial_ns < PARALLEL_WORK_THRESHOLD_NS || available_threads() == 1 {
            Pool::serial()
        } else {
            *self
        }
    }

    /// Splits `self.threads()` among `outer` concurrent callers: the
    /// pool an inner computation should use when `outer` of them run
    /// side by side (≥ 1 thread each).
    pub fn split(&self, outer: usize) -> Pool {
        Pool {
            threads: (self.threads / outer.max(1)).max(1),
        }
    }

    /// Runs `f(i)` for every `i` in `0..n` and returns the results in
    /// index order. Jobs are claimed dynamically by up to
    /// `min(threads, n)` scoped workers; with one worker (or one job)
    /// everything runs inline, in order, on the caller's thread.
    ///
    /// Each `f(i)` must be a pure function of `i` for the output to be
    /// deterministic — the pool guarantees placement, not purity.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job.
    pub fn run_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 {
            cbsp_trace::add("pool/jobs_inline", n as u64);
            return (0..n).map(f).collect();
        }
        // When tracing is on, each worker accumulates its queue-wait
        // (claim time minus fan-out start — time the job sat waiting
        // while workers were busy or still spawning) and execute time
        // locally, then merges once into the global counters. When
        // off, `submitted` is `None` and the loop takes no clock
        // readings at all.
        let submitted = cbsp_trace::enabled().then(Instant::now);
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut jobs = 0u64;
                    let mut queue_wait_ns = 0u64;
                    let mut exec_ns = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        if let Some(t0) = submitted {
                            let claimed = Instant::now();
                            queue_wait_ns = queue_wait_ns.saturating_add(elapsed_ns(t0));
                            let result = f(i);
                            exec_ns = exec_ns.saturating_add(elapsed_ns(claimed));
                            jobs += 1;
                            *slots[i].lock().expect("worker slot lock") = Some(result);
                        } else {
                            let result = f(i);
                            *slots[i].lock().expect("worker slot lock") = Some(result);
                        }
                    }
                    if submitted.is_some() {
                        cbsp_trace::add("pool/jobs_executed", jobs);
                        cbsp_trace::add("pool/queue_wait_ns", queue_wait_ns);
                        cbsp_trace::add("pool/exec_ns", exec_ns);
                    }
                });
            }
            if submitted.is_some() {
                cbsp_trace::add("pool/fan_outs", 1);
                cbsp_trace::add("pool/workers_spawned", workers as u64);
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker slot lock")
                    .expect("every job ran")
            })
            .collect()
    }

    /// Splits `0..n` into [`chunk_ranges`]-style chunks of `chunk`
    /// elements, folds each chunk with `fold`, and returns the per-chunk
    /// results **in chunk order**.
    ///
    /// The chunk layout depends only on `(n, chunk)`, so any
    /// fold-then-merge built on top of this is bit-identical at every
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero; propagates panics from `fold`.
    pub fn map_chunks<A, F>(&self, n: usize, chunk: usize, fold: F) -> Vec<A>
    where
        A: Send,
        F: Fn(Range<usize>) -> A + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        let chunks = n.div_ceil(chunk);
        self.run_indexed(chunks, |c| {
            let start = c * chunk;
            fold(start..(start + chunk).min(n))
        })
    }

    /// Deterministic chunked reduction over `0..n`: folds each chunk
    /// serially with `fold`, then merges the partials in chunk order on
    /// the caller's thread. Returns `None` when `n == 0`.
    ///
    /// This is the reduction primitive behind the parallel Lloyd update
    /// step: per-chunk partial centroid sums merged left-to-right give
    /// the same floating-point sum regardless of which worker computed
    /// which chunk.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero; propagates panics from the closures.
    pub fn reduce_chunks<A, F, M>(&self, n: usize, chunk: usize, fold: F, mut merge: M) -> Option<A>
    where
        A: Send,
        F: Fn(Range<usize>) -> A + Sync,
        M: FnMut(A, A) -> A,
    {
        let mut partials = self.map_chunks(n, chunk, fold).into_iter();
        let first = partials.next()?;
        Some(partials.fold(first, &mut merge))
    }
}

/// The chunk layout [`Pool::map_chunks`] uses: consecutive
/// `chunk`-sized ranges covering `0..n` (last one possibly short).
pub fn chunk_ranges(n: usize, chunk: usize) -> impl Iterator<Item = Range<usize>> {
    assert!(chunk > 0, "chunk size must be positive");
    (0..n.div_ceil(chunk)).map(move |c| {
        let start = c * chunk;
        start..(start + chunk).min(n)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_preserves_order() {
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            let out = pool.run_indexed(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_indexed_handles_empty_and_single() {
        let pool = Pool::new(4);
        assert_eq!(pool.run_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.run_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn chunk_layout_is_thread_independent() {
        let ranges: Vec<_> = chunk_ranges(10, 4).collect();
        assert_eq!(ranges, vec![0..4, 4..8, 8..10]);
        assert_eq!(chunk_ranges(0, 4).count(), 0);
        assert_eq!(chunk_ranges(4, 4).collect::<Vec<_>>(), vec![0..4]);
    }

    #[test]
    fn reduction_is_bit_identical_across_thread_counts() {
        // A floating-point sum whose value depends on association
        // order: if chunking or merge order varied with the thread
        // count, these results would differ in the low bits.
        let values: Vec<f64> = (0..10_000)
            .map(|i| ((i * 2_654_435_761_usize) % 1_000_003) as f64 * 1e-7 + 1e9)
            .collect();
        let sum_with = |threads: usize| {
            Pool::new(threads)
                .reduce_chunks(
                    values.len(),
                    64,
                    |r| r.map(|i| values[i]).fold(0.0f64, |a, b| a + b),
                    |a, b| a + b,
                )
                .expect("nonempty")
        };
        let s1 = sum_with(1);
        for threads in [2, 3, 5, 8, 16] {
            assert_eq!(s1.to_bits(), sum_with(threads).to_bits());
        }
    }

    #[test]
    fn reduce_chunks_empty_is_none() {
        let pool = Pool::new(4);
        assert_eq!(
            pool.reduce_chunks(0, 8, |_| 0.0f64, |a: f64, b| a + b),
            None
        );
    }

    #[test]
    fn split_distributes_threads() {
        let pool = Pool::new(8);
        assert_eq!(pool.split(2).threads(), 4);
        assert_eq!(pool.split(3).threads(), 2);
        assert_eq!(pool.split(100).threads(), 1);
        assert_eq!(pool.split(0).threads(), 8);
    }

    #[test]
    fn zero_means_auto() {
        assert_eq!(Pool::new(0).threads(), available_threads());
        assert!(Pool::serial().is_serial());
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_panics() {
        let _ = Pool::serial().map_chunks(10, 0, |r| r.len());
    }

    #[test]
    fn for_work_gates_small_fan_outs() {
        let pool = Pool::new(8);
        assert!(pool.for_work(0).is_serial());
        assert!(pool.for_work(PARALLEL_WORK_THRESHOLD_NS - 1).is_serial());
        if available_threads() > 1 {
            assert_eq!(pool.for_work(PARALLEL_WORK_THRESHOLD_NS), pool);
            assert_eq!(pool.for_work(u64::MAX), pool);
        } else {
            // One hardware thread: no estimate justifies a fan-out.
            assert!(pool.for_work(u64::MAX).is_serial());
        }
        // A serial pool stays serial regardless of the estimate.
        assert!(Pool::serial().for_work(u64::MAX).is_serial());
    }

    #[test]
    fn trace_counters_merge_exactly_under_concurrent_jobs() {
        let _guard = cbsp_trace::test_lock();
        cbsp_trace::enable();
        cbsp_trace::reset();
        let out = Pool::new(8).run_indexed(200, |i| {
            cbsp_trace::add("par/test_jobs", 1);
            i * 3
        });
        Pool::serial().run_indexed(5, |_| ());
        let snap = cbsp_trace::snapshot();
        cbsp_trace::disable();
        cbsp_trace::reset();
        assert_eq!(out, (0..200).map(|i| i * 3).collect::<Vec<_>>());
        // Per-job increments from 8 concurrent workers merge without
        // loss, and the pool's own batched counters agree.
        assert_eq!(snap.counters["par/test_jobs"], 200);
        assert_eq!(snap.counters["pool/jobs_executed"], 200);
        assert_eq!(snap.counters["pool/jobs_inline"], 5);
        assert_eq!(snap.counters["pool/fan_outs"], 1);
        assert_eq!(snap.counters["pool/workers_spawned"], 8);
        assert!(snap.counters.contains_key("pool/exec_ns"));
        assert!(snap.counters.contains_key("pool/queue_wait_ns"));
    }

    #[test]
    fn tracing_does_not_change_results() {
        let _guard = cbsp_trace::test_lock();
        let values: Vec<f64> = (0..5000).map(|i| (i as f64).sin() * 1e6).collect();
        let sum = |pool: &Pool| {
            pool.reduce_chunks(
                values.len(),
                64,
                |r| r.map(|i| values[i]).fold(0.0f64, |a, b| a + b),
                |a, b| a + b,
            )
            .expect("nonempty")
        };
        let pool = Pool::new(8);
        cbsp_trace::disable();
        let off = sum(&pool);
        cbsp_trace::enable();
        cbsp_trace::reset();
        let on = sum(&pool);
        cbsp_trace::disable();
        cbsp_trace::reset();
        assert_eq!(off.to_bits(), on.to_bits());
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).run_indexed(16, |i| {
                if i == 7 {
                    panic!("job 7 exploded");
                }
                i
            })
        });
        assert!(result.is_err());
    }
}
