//! Random linear projection (paper §2.3 step 2).
//!
//! BBVs have one dimension per static basic block — hundreds to tens of
//! thousands. SimPoint projects them down to a small number of
//! dimensions (15 by default) with a random matrix; by the
//! Johnson–Lindenstrauss intuition, pairwise distances are approximately
//! preserved while k-means gets dramatically cheaper and more robust.
//!
//! The projection matrix is never materialized: row `i` (for input
//! dimension `i`) is regenerated on demand from `(seed, i)`, so
//! projecting scales with the number of *nonzero* input entries.

use crate::vector::VectorSet;
use cbsp_par::Pool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rows per parallel projection chunk. Fixed so the output layout (and
/// the work split) never depends on the thread count.
const PROJECT_CHUNK: usize = 64;

/// A seeded random projection from `in_dims` to `out_dims` dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Projection {
    seed: u64,
    out_dims: usize,
}

impl Projection {
    /// Creates a projection to `out_dims` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `out_dims` is zero.
    pub fn new(seed: u64, out_dims: usize) -> Self {
        assert!(out_dims > 0, "projection must keep at least one dimension");
        Projection { seed, out_dims }
    }

    /// Output dimensionality.
    pub fn out_dims(&self) -> usize {
        self.out_dims
    }

    /// Row of the (virtual) projection matrix for input dimension `i`:
    /// `out_dims` values uniform in `[-1, 1]`.
    fn row(&self, i: usize) -> impl Iterator<Item = f64> {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64),
        );
        let n = self.out_dims;
        (0..n).map(move |_| rng.gen_range(-1.0..=1.0))
    }

    /// Projects `v` to the output space.
    pub fn project(&self, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.out_dims];
        for (i, &x) in v.iter().enumerate() {
            if x == 0.0 {
                continue; // BBVs are sparse; skip zero mass
            }
            for (j, r) in self.row(i).enumerate() {
                out[j] += x * r;
            }
        }
        out
    }

    /// Projects a batch of vectors, fanning rows out over `pool`. If
    /// the input dimensionality is already at most `out_dims`, the
    /// vectors are passed through unchanged (projection would only add
    /// noise).
    ///
    /// Each row's projection is an independent pure function of
    /// `(seed, row)`, so the result is identical at any thread count.
    pub fn project_all(&self, vectors: &VectorSet, pool: &Pool) -> VectorSet {
        if vectors.is_empty() || vectors.dims() <= self.out_dims {
            return vectors.clone();
        }
        let chunks = pool.map_chunks(vectors.len(), PROJECT_CHUNK, |range| {
            let mut flat = Vec::with_capacity(range.len() * self.out_dims);
            for i in range {
                flat.extend_from_slice(&self.project(vectors.row(i)));
            }
            flat
        });
        let mut data = Vec::with_capacity(vectors.len() * self.out_dims);
        for chunk in chunks {
            data.extend_from_slice(&chunk);
        }
        VectorSet::from_flat(self.out_dims, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::distance_sq;

    #[test]
    fn projection_is_deterministic() {
        let p = Projection::new(42, 4);
        let v = vec![1.0, 0.0, 0.5, 0.25, 0.0, 0.125];
        assert_eq!(p.project(&v), p.project(&v));
        let q = Projection::new(43, 4);
        assert_ne!(p.project(&v), q.project(&v));
    }

    #[test]
    fn projection_is_linear() {
        let p = Projection::new(7, 5);
        let a = vec![0.2, 0.8, 0.0, 0.3];
        let b = vec![0.5, 0.0, 0.1, 0.9];
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let pa = p.project(&a);
        let pb = p.project(&b);
        let psum = p.project(&sum);
        for j in 0..5 {
            assert!((psum[j] - (pa[j] + pb[j])).abs() < 1e-9);
        }
    }

    #[test]
    fn small_inputs_pass_through() {
        let p = Projection::new(1, 15);
        let vs = VectorSet::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(p.project_all(&vs, &Pool::serial()), vs);
    }

    #[test]
    fn batch_projection_is_thread_count_invariant() {
        let p = Projection::new(11, 6);
        let mut vs = VectorSet::new(40);
        for i in 0..200usize {
            let mut row = vec![0.0; 40];
            row[i % 40] = 1.0 + i as f64 * 0.01;
            row[(i * 7) % 40] += 0.5;
            vs.push(&row);
        }
        let serial = p.project_all(&vs, &Pool::serial());
        assert_eq!(serial.len(), 200);
        assert_eq!(serial.dims(), 6);
        for threads in [2, 8] {
            let pooled = p.project_all(&vs, &Pool::new(threads));
            assert_eq!(serial, pooled, "threads={threads}");
        }
        // Rows match the single-vector API exactly.
        for i in [0usize, 63, 64, 199] {
            assert_eq!(serial.row(i), &p.project(vs.row(i))[..]);
        }
    }

    #[test]
    fn distances_roughly_preserved_in_expectation() {
        // Far-apart one-hot vectors must stay distinguishable from
        // nearby ones after projection (JL sanity check, averaged over
        // several seeds to avoid flakiness).
        let dims = 200;
        let mut near_ratio = 0.0;
        for seed in 0..10 {
            let p = Projection::new(seed, 15);
            let mut a = vec![0.0; dims];
            let mut b = vec![0.0; dims];
            let mut c = vec![0.0; dims];
            a[3] = 1.0;
            b[3] = 0.9;
            b[150] = 0.1; // close to a
            c[150] = 1.0; // far from a
            let (pa, pb, pc) = (p.project(&a), p.project(&b), p.project(&c));
            near_ratio += distance_sq(&pa, &pb) / distance_sq(&pa, &pc).max(1e-12);
        }
        assert!(
            near_ratio / 10.0 < 0.5,
            "near pair should stay much closer than far pair"
        );
    }
}
