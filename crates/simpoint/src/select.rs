//! The SimPoint driver (paper §2.3 steps 1–5): normalize → project →
//! search k → pick the clustering → select representatives and weights.

use crate::bic::bic;
use crate::kmeans::{kmeans, KMeansResult};
use crate::projection::Projection;
use crate::vector::{distance_sq, normalized, VectorSet};
use cbsp_par::Pool;
use serde::{Deserialize, Serialize};

/// Intervals per normalization chunk (fixed: layout is thread-count
/// independent).
const NORM_CHUNK: usize = 256;

/// How the representative interval of each phase is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RepresentativePolicy {
    /// The interval closest to the cluster centroid (SimPoint's
    /// default, paper §2.3 step 5).
    NearestCentroid,
    /// The *earliest* interval whose distance to the centroid is within
    /// `tolerance` (relative to the phase's distance spread) of the
    /// best — SimPoint 3.0's "early simulation points" option
    /// (Perelman et al., PACT 2003; the paper's reference \[13\]), which
    /// trades a little representativeness for much less fast-forwarding
    /// before each simulation region.
    Earliest {
        /// Allowed relative distance slack in `[0, 1]`.
        tolerance: f64,
    },
    /// Per-cluster stratified sampling (arxiv 2603.22605): each phase
    /// is split into up to `per_cluster` contiguous strata in interval
    /// order, the centroid-nearest member of each stratum is selected,
    /// and the phase weight is shared by stratum instruction mass. The
    /// extra representatives trade slice replays for a variance-derived
    /// confidence interval (see `cbsp_core::stratified_ci`).
    Stratified {
        /// Representatives per phase (clamped to the phase size).
        per_cluster: usize,
    },
}

// Not derived: the vendored serde derive parser does not understand a
// `#[default]` variant attribute.
#[allow(clippy::derivable_impls)]
impl Default for RepresentativePolicy {
    fn default() -> Self {
        RepresentativePolicy::NearestCentroid
    }
}

/// Configuration of a SimPoint analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimPointConfig {
    /// Maximum number of clusters (phases). The paper uses 10 (§5.1).
    pub max_k: usize,
    /// Random-projection dimensionality (SimPoint default: 15).
    pub projection_dims: usize,
    /// BIC threshold θ ∈ \[0, 1\]: the chosen clustering is the smallest
    /// k whose BIC reaches `min + θ·(max − min)` over the k search
    /// (SimPoint default: 0.9).
    pub bic_threshold: f64,
    /// k-means restarts (random seeds) per k; the best WCSS wins.
    pub restarts: usize,
    /// Lloyd-iteration cap per k-means run.
    pub max_iters: usize,
    /// Master seed for projection and clustering.
    pub seed: u64,
    /// Representative-selection policy.
    pub representative: RepresentativePolicy,
    /// Use Hamerly's bounds-accelerated k-means instead of plain Lloyd
    /// iteration (same k-means++ initialization, same fixed point,
    /// fewer distance computations — see [`crate::hamerly`]).
    pub accelerated: bool,
    /// Worker threads for the analysis (`0` = all available cores).
    ///
    /// Purely an execution knob: the k×restart search grid and the
    /// chunked reductions inside k-means are deterministic by
    /// construction, so the result is bit-identical at every value.
    /// Cache/artifact keys must therefore ignore this field.
    pub threads: usize,
}

impl Default for SimPointConfig {
    fn default() -> Self {
        SimPointConfig {
            max_k: 10,
            projection_dims: 15,
            bic_threshold: 0.9,
            restarts: 5,
            max_iters: 100,
            seed: 0x51AD_2007,
            representative: RepresentativePolicy::NearestCentroid,
            accelerated: false,
            threads: 0,
        }
    }
}

/// One selected simulation point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimPoint {
    /// Phase (cluster) id in `0..k`.
    pub phase: u32,
    /// Index of the representative interval.
    pub interval: usize,
    /// Overall weight of this point: the phase's instruction fraction
    /// times [`share`](Self::share), in `[0, 1]`. All points' weights
    /// sum to ≈ 1.
    pub weight: f64,
    /// Fraction of the phase this point stands for, in `(0, 1]`.
    /// Single-representative selectors always report 1; stratified
    /// selection splits the phase by stratum instruction mass.
    pub share: f64,
    /// Mean squared distance of the phase's members to its centroid in
    /// the projected space (a confidence signal: tight phases are
    /// better represented by a single point). SimPoint 3.0 reports the
    /// analogous per-cluster statistics.
    pub variance: f64,
}

/// Result of a SimPoint analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimPointResult {
    /// Chosen number of phases (distinct clusters with members).
    pub k: usize,
    /// Phase label per interval.
    pub labels: Vec<u32>,
    /// Selected simulation points, ordered by descending weight. One
    /// per phase for single-representative selectors; stratified
    /// selection yields up to `per_cluster` points per phase.
    pub points: Vec<SimPoint>,
    /// `(k, BIC)` for every k examined (diagnostics / ablations).
    pub bic_scores: Vec<(usize, f64)>,
}

impl SimPointResult {
    /// Total weight of all points (≈ 1).
    pub fn total_weight(&self) -> f64 {
        self.points.iter().map(|p| p.weight).sum()
    }

    /// The heaviest simulation point for `phase` (its only point under
    /// single-representative selectors).
    pub fn point_for_phase(&self, phase: u32) -> Option<&SimPoint> {
        self.points.iter().find(|p| p.phase == phase)
    }
}

/// Runs the full SimPoint analysis on one binary's intervals.
///
/// `vectors[i]` is interval *i*'s (unnormalized) frequency vector and
/// `instr_counts[i]` the instructions it spans. For fixed-length
/// intervals all counts are (nearly) equal and this reduces to classic
/// SimPoint; for variable-length intervals the counts weight both the
/// clustering and the phase weights (§3.2.4).
///
/// # Panics
///
/// Panics if inputs are empty or lengths mismatch.
pub fn analyze(
    vectors: &[Vec<f64>],
    instr_counts: &[u64],
    config: &SimPointConfig,
) -> SimPointResult {
    assert!(!vectors.is_empty(), "need at least one interval");
    assert_eq!(
        vectors.len(),
        instr_counts.len(),
        "one instruction count per interval"
    );
    let in_dims = vectors[0].len();
    assert!(in_dims > 0, "intervals need at least one dimension");
    assert!(
        vectors.iter().all(|v| v.len() == in_dims),
        "intervals must share dimensionality"
    );
    let pool = Pool::new(config.threads);

    // Steps 1-2: normalize, project — both chunk-parallel over fixed
    // ranges, so the flat output layout is thread-count independent.
    let normed = {
        let _span = cbsp_trace::span("simpoint/normalize");
        let chunks = pool.map_chunks(vectors.len(), NORM_CHUNK, |range| {
            let mut flat = Vec::with_capacity(range.len() * in_dims);
            for i in range {
                flat.extend_from_slice(&normalized(&vectors[i]));
            }
            flat
        });
        let mut flat = Vec::with_capacity(vectors.len() * in_dims);
        for chunk in chunks {
            flat.extend_from_slice(&chunk);
        }
        VectorSet::from_flat(in_dims, flat)
    };
    let projection = Projection::new(config.seed, config.projection_dims.max(1));
    let data = {
        let _span = cbsp_trace::span("simpoint/project");
        projection.project_all(&normed, &pool)
    };
    drop(normed);

    // Interval weights: instructions, scaled to mean 1 so BIC's
    // effective sample size matches the interval count.
    let n = data.len();
    let total_instr: f64 = instr_counts.iter().map(|&c| c as f64).sum();
    let weights: Vec<f64> = if total_instr > 0.0 {
        instr_counts
            .iter()
            .map(|&c| c as f64 * n as f64 / total_instr)
            .collect()
    } else {
        vec![1.0; n]
    };

    // Step 3: k search with restarts. The whole k×restart grid fans out
    // over the pool — one cell per (k, restart), each running a serial
    // k-means — and the per-k best is reduced afterwards in restart
    // order with a strict `<` (first minimum wins), exactly matching
    // the serial nested-loop order. Since each cell is a pure function
    // of its seed, the selection is identical at any thread count.
    let max_k = config.max_k.clamp(1, n);
    let restarts = config.restarts.max(1);
    let search_span = cbsp_trace::span("simpoint/search");
    let cell_runs = pool.run_indexed(max_k * restarts, |cell| {
        let k = cell / restarts + 1;
        let r = cell % restarts;
        let seed = config
            .seed
            .wrapping_add((k as u64) << 32)
            .wrapping_add(r as u64);
        let run = if config.accelerated {
            let init = crate::kmeans::plus_plus_init(&data, &weights, k, seed);
            crate::hamerly::kmeans_hamerly_from(&data, &weights, init, config.max_iters)
        } else {
            kmeans(&data, &weights, k, seed, config.max_iters)
        };
        cbsp_trace::add("simpoint/kmeans_runs", 1);
        cbsp_trace::add("simpoint/kmeans_iterations", run.iterations as u64);
        run
    });
    let mut runs: Vec<(usize, KMeansResult, f64)> = Vec::with_capacity(max_k);
    let mut cells = cell_runs.into_iter();
    for k in 1..=max_k {
        let mut best: Option<KMeansResult> = None;
        for _ in 0..restarts {
            let run = cells.next().expect("one run per grid cell");
            if best.as_ref().is_none_or(|b| run.wcss < b.wcss) {
                best = Some(run);
            }
        }
        let best = best.expect("at least one restart");
        let score = bic(&data, &weights, &best);
        runs.push((k, best, score));
    }
    drop(search_span);

    // Step 4: smallest k reaching the BIC threshold.
    let bic_scores: Vec<(usize, f64)> = runs.iter().map(|(k, _, s)| (*k, *s)).collect();
    let min = bic_scores
        .iter()
        .map(|(_, s)| *s)
        .fold(f64::INFINITY, f64::min);
    let max = bic_scores
        .iter()
        .map(|(_, s)| *s)
        .fold(f64::NEG_INFINITY, f64::max);
    let cutoff = min + config.bic_threshold.clamp(0.0, 1.0) * (max - min);
    let chosen_idx = runs
        .iter()
        .position(|(_, _, s)| *s >= cutoff - 1e-12)
        .unwrap_or(runs.len() - 1);
    let (k, clustering, _) = &runs[chosen_idx];

    // Step 5: representatives and weights. The selection policy is a
    // pluggable [`crate::estimator::Selector`]; phase weights stay the
    // phase's instruction fraction, split across representatives by the
    // selector's within-phase shares (`share == 1.0` for the classic
    // single-representative policies, which keeps their weights
    // bit-identical to the pre-estimator pipeline).
    let selector = config.representative.selector();
    let mut points = Vec::with_capacity(*k);
    let mut phases = 0;
    for phase in 0..*k {
        let members: Vec<usize> = clustering
            .labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l as usize == phase)
            .map(|(i, _)| i)
            .collect();
        if members.is_empty() {
            continue; // k-means can leave a label unused after repair
        }
        let centroid = clustering.centroids.row(phase);
        let dists: Vec<f64> = members
            .iter()
            .map(|&i| distance_sq(data.row(i), centroid))
            .collect();
        let phase_instr: f64 = members.iter().map(|&i| instr_counts[i] as f64).sum();
        let variance = dists.iter().sum::<f64>() / members.len() as f64;
        let phase_weight = if total_instr > 0.0 {
            phase_instr / total_instr
        } else {
            members.len() as f64 / n as f64
        };
        phases += 1;
        let ctx = crate::estimator::PhaseCtx {
            members: &members,
            dists: &dists,
            instr_counts,
        };
        for chosen in selector.select(&ctx) {
            points.push(SimPoint {
                phase: phase as u32,
                interval: chosen.interval,
                weight: phase_weight * chosen.share,
                share: chosen.share,
                variance,
            });
        }
    }
    points.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("finite weights"));

    SimPointResult {
        k: phases,
        labels: clustering.labels.clone(),
        points,
        bic_scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds `phases` synthetic phases of `per` intervals each; phase
    /// `p` concentrates its BBV mass on blocks `[p*8, p*8+8)`. Members
    /// of a phase are identical: per-interval jitter would introduce
    /// real sub-structure, and whether BIC's 0.9 threshold lands before
    /// or after the sub-clusters split depends on the projection's
    /// random stream rather than on the phase structure under test.
    fn phased_vectors(phases: usize, per: usize) -> (Vec<Vec<f64>>, Vec<u64>) {
        let dims = phases * 8;
        let mut vectors = Vec::new();
        for p in 0..phases {
            for _ in 0..per {
                let mut v = vec![0.0; dims];
                for j in 0..8 {
                    v[p * 8 + j] = 100.0 + ((p + j) % 3) as f64;
                }
                vectors.push(v);
            }
        }
        let counts = vec![100_000u64; vectors.len()];
        (vectors, counts)
    }

    #[test]
    fn recovers_clear_phase_structure() {
        let (vectors, counts) = phased_vectors(4, 10);
        let r = analyze(&vectors, &counts, &SimPointConfig::default());
        assert_eq!(r.k, 4, "four well-separated phases");
        assert!((r.total_weight() - 1.0).abs() < 1e-9);
        // Intervals of the same synthetic phase share a label.
        for p in 0..4 {
            let first = r.labels[p * 10];
            for i in 0..10 {
                assert_eq!(r.labels[p * 10 + i], first);
            }
        }
        // Equal-size phases: each weight ≈ 1/4.
        for pt in &r.points {
            assert!((pt.weight - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn representative_belongs_to_its_phase() {
        let (vectors, counts) = phased_vectors(3, 7);
        let r = analyze(&vectors, &counts, &SimPointConfig::default());
        for pt in &r.points {
            assert_eq!(r.labels[pt.interval], pt.phase);
        }
    }

    #[test]
    fn single_behaviour_yields_one_phase() {
        let vectors = vec![vec![5.0, 5.0, 0.0]; 30];
        let counts = vec![1000u64; 30];
        let r = analyze(&vectors, &counts, &SimPointConfig::default());
        assert_eq!(r.k, 1);
        assert_eq!(r.points[0].weight, 1.0);
    }

    #[test]
    fn max_k_caps_the_phase_count() {
        let (vectors, counts) = phased_vectors(8, 6);
        let config = SimPointConfig {
            max_k: 3,
            ..SimPointConfig::default()
        };
        let r = analyze(&vectors, &counts, &config);
        assert!(r.k <= 3, "got k={}", r.k);
    }

    #[test]
    fn variable_interval_lengths_drive_weights() {
        // Two phases; phase 0's intervals are 9x longer.
        let mut vectors = Vec::new();
        let mut counts = Vec::new();
        for i in 0..10 {
            let mut a = vec![0.0; 16];
            a[0] = 10.0;
            a[1] = (i % 3) as f64 * 0.1; // small within-phase jitter
            vectors.push(a);
            counts.push(900_000);
            let mut b = vec![0.0; 16];
            b[8] = 10.0;
            b[9] = (i % 3) as f64 * 0.1;
            vectors.push(b);
            counts.push(100_000);
        }
        let r = analyze(&vectors, &counts, &SimPointConfig::default());
        // BIC may split the jittered sub-behaviours further, but the
        // instruction mass must land 90/10 across the two behaviour
        // families (block 0 vs block 8).
        let mass_a: f64 = r
            .points
            .iter()
            .filter(|p| vectors[p.interval][0] > vectors[p.interval][8])
            .map(|p| p.weight)
            .sum();
        assert!((mass_a - 0.9).abs() < 1e-6, "phase-A mass {mass_a}");
        assert!((r.total_weight() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn analysis_is_deterministic() {
        let (vectors, counts) = phased_vectors(5, 9);
        let a = analyze(&vectors, &counts, &SimPointConfig::default());
        let b = analyze(&vectors, &counts, &SimPointConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn earliest_policy_prefers_earlier_intervals() {
        // Three phases whose members drift slightly: the earliest
        // member is never the centroid-nearest, but it is within a
        // generous tolerance.
        let mut vectors = Vec::new();
        for p in 0..3 {
            for i in 0..10 {
                let mut v = vec![0.0; 24];
                v[p * 8] = 100.0;
                v[p * 8 + 1] = i as f64; // drift: later members differ
                vectors.push(v);
            }
        }
        let counts = vec![1_000u64; vectors.len()];
        let nearest = analyze(&vectors, &counts, &SimPointConfig::default());
        let early_config = SimPointConfig {
            representative: RepresentativePolicy::Earliest { tolerance: 1.0 },
            ..SimPointConfig::default()
        };
        let early = analyze(&vectors, &counts, &early_config);
        // Same clustering, but representatives are no later.
        assert_eq!(early.k, nearest.k);
        assert_eq!(early.labels, nearest.labels);
        for (e, n) in early.points.iter().zip(&nearest.points) {
            assert!(
                e.interval <= n.interval,
                "early {} > nearest {}",
                e.interval,
                n.interval
            );
        }
        // With tolerance 1.0 the earliest member of each phase wins.
        for pt in &early.points {
            let first_member = early
                .labels
                .iter()
                .position(|&l| l == pt.phase)
                .expect("phase has members");
            assert_eq!(pt.interval, first_member);
        }
        // Zero tolerance reduces to the nearest-centroid choice.
        let zero = analyze(
            &vectors,
            &counts,
            &SimPointConfig {
                representative: RepresentativePolicy::Earliest { tolerance: 0.0 },
                ..SimPointConfig::default()
            },
        );
        for (z, n) in zero.points.iter().zip(&nearest.points) {
            assert_eq!(z.interval, n.interval);
        }
    }

    #[test]
    fn variance_reflects_phase_tightness() {
        // Phase 0: identical members (zero variance). Phase 1: spread.
        let mut vectors = Vec::new();
        for _ in 0..8 {
            let mut v = vec![0.0; 16];
            v[0] = 50.0;
            vectors.push(v);
        }
        for i in 0..8 {
            let mut v = vec![0.0; 16];
            v[8] = 50.0;
            v[9] = 5.0 * i as f64;
            vectors.push(v);
        }
        let counts = vec![1_000u64; vectors.len()];
        // Cap k at 2 so the spread family stays one (loose) cluster.
        let config = SimPointConfig {
            max_k: 2,
            ..SimPointConfig::default()
        };
        let r = analyze(&vectors, &counts, &config);
        let tight = r
            .points
            .iter()
            .find(|p| r.labels[0] == p.phase)
            .expect("phase of interval 0");
        assert!(
            tight.variance < 1e-12,
            "identical members: {}",
            tight.variance
        );
        assert!(
            r.points.iter().any(|p| p.variance > tight.variance),
            "spread phase must have higher variance"
        );
    }

    #[test]
    fn accelerated_analysis_matches_plain_analysis() {
        let (vectors, counts) = phased_vectors(4, 12);
        let plain = analyze(&vectors, &counts, &SimPointConfig::default());
        let fast = analyze(
            &vectors,
            &counts,
            &SimPointConfig {
                accelerated: true,
                ..SimPointConfig::default()
            },
        );
        assert_eq!(fast.k, plain.k);
        assert_eq!(fast.labels, plain.labels);
        for (a, b) in fast.points.iter().zip(&plain.points) {
            assert_eq!(a.phase, b.phase);
            assert_eq!(a.interval, b.interval);
            assert!((a.weight - b.weight).abs() < 1e-12);
        }
    }

    #[test]
    fn analysis_is_bit_identical_at_any_thread_count() {
        let (vectors, counts) = phased_vectors(5, 11);
        let serial = analyze(
            &vectors,
            &counts,
            &SimPointConfig {
                threads: 1,
                ..SimPointConfig::default()
            },
        );
        for threads in [2, 8] {
            let pooled = analyze(
                &vectors,
                &counts,
                &SimPointConfig {
                    threads,
                    ..SimPointConfig::default()
                },
            );
            assert_eq!(serial, pooled, "threads={threads} must match exactly");
            for ((_, a), (_, b)) in serial.bic_scores.iter().zip(&pooled.bic_scores) {
                assert_eq!(a.to_bits(), b.to_bits(), "BIC bits at threads={threads}");
            }
        }
    }

    #[test]
    fn stratified_selects_multiple_points_per_phase() {
        let (vectors, counts) = phased_vectors(3, 9);
        let config = SimPointConfig {
            representative: RepresentativePolicy::Stratified { per_cluster: 3 },
            ..SimPointConfig::default()
        };
        let nearest = analyze(&vectors, &counts, &SimPointConfig::default());
        let strat = analyze(&vectors, &counts, &config);
        // Same clustering decision (selection happens after step 4)…
        assert_eq!(strat.k, nearest.k);
        assert_eq!(strat.labels, nearest.labels);
        // …but three representatives per phase, sharing its weight.
        assert_eq!(strat.points.len(), 3 * nearest.points.len());
        assert!((strat.total_weight() - 1.0).abs() < 1e-9);
        for pt in &strat.points {
            assert_eq!(strat.labels[pt.interval], pt.phase);
            assert!(pt.share > 0.0 && pt.share <= 1.0);
        }
        for phase in 0..strat.k as u32 {
            let share: f64 = strat
                .points
                .iter()
                .filter(|p| p.phase == phase)
                .map(|p| p.share)
                .sum();
            assert!((share - 1.0).abs() < 1e-12, "phase {phase} share {share}");
        }
        // Single-representative lanes always report share 1.
        for pt in &nearest.points {
            assert_eq!(pt.share, 1.0);
        }
    }

    #[test]
    fn stratified_degenerate_phases_stay_deterministic() {
        // One large phase plus a single-interval phase: asking for 4
        // representatives must select the lone member exactly once with
        // share 1, and never panic or duplicate.
        let mut vectors = Vec::new();
        for _ in 0..12 {
            let mut v = vec![0.0; 16];
            v[0] = 100.0;
            vectors.push(v);
        }
        let mut lone = vec![0.0; 16];
        lone[8] = 100.0;
        vectors.push(lone);
        let counts = vec![1_000u64; vectors.len()];
        let config = SimPointConfig {
            max_k: 2,
            representative: RepresentativePolicy::Stratified { per_cluster: 4 },
            ..SimPointConfig::default()
        };
        let a = analyze(&vectors, &counts, &config);
        let b = analyze(&vectors, &counts, &config);
        assert_eq!(a, b, "degenerate stratified selection is deterministic");
        let lone_phase = a.labels[12];
        let lone_points: Vec<_> = a.points.iter().filter(|p| p.phase == lone_phase).collect();
        assert_eq!(lone_points.len(), 1, "single-member phase: one point");
        assert_eq!(lone_points[0].share, 1.0);
        // The 12-member zero-variance phase: 4 distinct representatives.
        let big: Vec<_> = a.points.iter().filter(|p| p.phase != lone_phase).collect();
        assert_eq!(big.len(), 4);
        let mut seen: Vec<usize> = big.iter().map(|p| p.interval).collect();
        seen.dedup();
        assert_eq!(seen.len(), 4, "no duplicate representatives");
    }

    #[test]
    fn bic_scores_reported_for_every_k() {
        let (vectors, counts) = phased_vectors(2, 12);
        let r = analyze(&vectors, &counts, &SimPointConfig::default());
        assert_eq!(r.bic_scores.len(), 10);
        assert_eq!(r.bic_scores[0].0, 1);
        assert_eq!(r.bic_scores[9].0, 10);
    }
}
