//! Frequency-vector utilities.
//!
//! SimPoint's first step (paper §2.3 step 1): normalize each interval's
//! frequency vector so its elements sum to 1, making intervals of
//! different lengths comparable by *behaviour* rather than by volume.

/// Normalizes `v` in place so its elements sum to 1.
///
/// Vectors with zero mass (an interval that executed nothing) are left
/// untouched; callers should not produce them.
pub fn normalize(v: &mut [f64]) {
    let sum: f64 = v.iter().sum();
    if sum > 0.0 {
        for x in v.iter_mut() {
            *x /= sum;
        }
    }
}

/// Returns a normalized copy of `v`.
pub fn normalized(v: &[f64]) -> Vec<f64> {
    let mut out = v.to_vec();
    normalize(&mut out);
    out
}

/// Squared Euclidean distance between two equal-length vectors.
///
/// # Panics
///
/// Debug-asserts equal lengths.
#[inline]
pub fn distance_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Manhattan distance, used by SimPoint's original phase-comparison
/// analyses; provided for completeness and ablations.
#[inline]
pub fn distance_l1(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_makes_unit_mass() {
        let mut v = vec![2.0, 6.0, 0.0, 2.0];
        normalize(&mut v);
        assert_eq!(v, vec![0.2, 0.6, 0.0, 0.2]);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_leaves_zero_vectors() {
        let mut v = vec![0.0, 0.0];
        normalize(&mut v);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn distances() {
        let a = [0.0, 3.0];
        let b = [4.0, 0.0];
        assert_eq!(distance_sq(&a, &b), 25.0);
        assert_eq!(distance_l1(&a, &b), 7.0);
        assert_eq!(distance_sq(&a, &a), 0.0);
    }
}
