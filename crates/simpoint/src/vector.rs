//! Frequency-vector storage and distance kernels.
//!
//! SimPoint's first step (paper §2.3 step 1): normalize each interval's
//! frequency vector so its elements sum to 1, making intervals of
//! different lengths comparable by *behaviour* rather than by volume.
//!
//! The clustering engine stores its vectors in a [`VectorSet`] — one
//! contiguous row-major `Vec<f64>` — rather than `Vec<Vec<f64>>`. The
//! distance loop of k-means walks rows sequentially; flat storage turns
//! every row access into a stride within one allocation (no pointer
//! chase, no per-row cache-line split), and the unrolled
//! [`distance_sq`] kernel below gives the compiler independent
//! accumulator chains it can map onto SIMD lanes.

/// Normalizes `v` in place so its elements sum to 1.
///
/// Vectors with zero mass (an interval that executed nothing) are left
/// untouched; callers should not produce them.
pub fn normalize(v: &mut [f64]) {
    let sum: f64 = v.iter().sum();
    if sum > 0.0 {
        for x in v.iter_mut() {
            *x /= sum;
        }
    }
}

/// Returns a normalized copy of `v`.
pub fn normalized(v: &[f64]) -> Vec<f64> {
    let mut out = v.to_vec();
    normalize(&mut out);
    out
}

/// A set of equal-dimension vectors in one contiguous row-major buffer.
///
/// Row `i` occupies `data[i*dims .. (i+1)*dims]`. This is the storage
/// format of every hot loop in the crate: k-means data and centroids,
/// projected vectors, and the Hamerly bounds all index into flat rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VectorSet {
    data: Vec<f64>,
    dims: usize,
}

impl VectorSet {
    /// An empty set of `dims`-dimensional vectors.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is zero.
    pub fn new(dims: usize) -> Self {
        Self::with_capacity(dims, 0)
    }

    /// An empty set with room for `rows` vectors.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is zero.
    pub fn with_capacity(dims: usize, rows: usize) -> Self {
        assert!(dims > 0, "vectors need at least one dimension");
        VectorSet {
            data: Vec::with_capacity(dims * rows),
            dims,
        }
    }

    /// Builds a set from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is zero or `data.len()` is not a multiple of
    /// `dims`.
    pub fn from_flat(dims: usize, data: Vec<f64>) -> Self {
        assert!(dims > 0, "vectors need at least one dimension");
        assert_eq!(data.len() % dims, 0, "flat buffer must hold whole rows");
        VectorSet { data, dims }
    }

    /// Builds a set by copying nested rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty, the first row is empty, or rows have
    /// unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let dims = rows.first().map_or(0, Vec::len);
        let mut set = VectorSet::with_capacity(dims, rows.len());
        for row in rows {
            set.push(row);
        }
        set
    }

    /// Appends one vector.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.dims()`.
    pub fn push(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dims, "row dimensionality mismatch");
        self.data.extend_from_slice(row);
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.data.len() / self.dims
    }

    /// `true` if the set holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality of every vector.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Vector `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dims..(i + 1) * self.dims]
    }

    /// Mutable view of vector `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.dims..(i + 1) * self.dims]
    }

    /// Iterates over rows in index order.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.dims)
    }

    /// The whole row-major buffer.
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Copies the rows back into nested form (interop / diagnostics —
    /// not for hot paths).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.rows().map(<[f64]>::to_vec).collect()
    }
}

/// Number of independent accumulator chains in the distance kernels.
///
/// Eight f64 lanes fill two 4-wide AVX registers (or four 2-wide
/// NEON/SSE registers) and, more importantly, break the loop-carried
/// add dependency eight ways: with ~4-cycle add latency and 2
/// adds/cycle throughput, at least eight chains are needed to keep the
/// FP units saturated. Verified against the 4-lane predecessor in the
/// `distance_kernel` criterion bench (`sq_4lane` / `sq_8lane` A/B
/// lanes).
pub const KERNEL_LANES: usize = 8;

/// Squared Euclidean distance between two equal-length vectors.
///
/// Unrolled over [`KERNEL_LANES`] independent accumulators so the
/// chains have no loop-carried dependency on each other — the form
/// auto-vectorizers turn into packed SIMD (and FMA where the target has
/// it). The accumulator layout and the pairwise reduction order are
/// fixed, so the result is a pure function of the inputs: identical on
/// every call, at any thread count.
///
/// # Panics
///
/// Debug-asserts equal lengths.
#[inline]
pub fn distance_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let main = a.len() & !(KERNEL_LANES - 1);
    let mut acc = [0.0f64; KERNEL_LANES];
    for (ca, cb) in a[..main]
        .chunks_exact(KERNEL_LANES)
        .zip(b[..main].chunks_exact(KERNEL_LANES))
    {
        for lane in 0..KERNEL_LANES {
            let d = ca[lane] - cb[lane];
            acc[lane] += d * d;
        }
    }
    let mut tail = 0.0;
    for (x, y) in a[main..].iter().zip(&b[main..]) {
        let d = x - y;
        tail += d * d;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
}

/// Manhattan distance, used by SimPoint's original phase-comparison
/// analyses; provided for completeness and ablations.
///
/// Same [`KERNEL_LANES`]-chain unrolling and fixed reduction order as
/// [`distance_sq`] — `abs` is branch-free (a sign-bit mask), so the
/// loop vectorizes the same way.
#[inline]
pub fn distance_l1(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let main = a.len() & !(KERNEL_LANES - 1);
    let mut acc = [0.0f64; KERNEL_LANES];
    for (ca, cb) in a[..main]
        .chunks_exact(KERNEL_LANES)
        .zip(b[..main].chunks_exact(KERNEL_LANES))
    {
        for lane in 0..KERNEL_LANES {
            acc[lane] += (ca[lane] - cb[lane]).abs();
        }
    }
    let mut tail = 0.0;
    for (x, y) in a[main..].iter().zip(&b[main..]) {
        tail += (x - y).abs();
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_makes_unit_mass() {
        let mut v = vec![2.0, 6.0, 0.0, 2.0];
        normalize(&mut v);
        assert_eq!(v, vec![0.2, 0.6, 0.0, 0.2]);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_leaves_zero_vectors() {
        let mut v = vec![0.0, 0.0];
        normalize(&mut v);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn distances() {
        let a = [0.0, 3.0];
        let b = [4.0, 0.0];
        assert_eq!(distance_sq(&a, &b), 25.0);
        assert_eq!(distance_l1(&a, &b), 7.0);
        assert_eq!(distance_sq(&a, &a), 0.0);
    }

    #[test]
    fn unrolled_kernel_matches_scalar_reference_at_every_length() {
        // Cover all four tail residues and a longer vector.
        for len in [1, 2, 3, 4, 5, 6, 7, 8, 15, 16, 17, 33] {
            let a: Vec<f64> = (0..len).map(|i| (i as f64) * 0.37 - 1.0).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64).sin()).collect();
            let fast = distance_sq(&a, &b);
            let scalar: f64 = a
                .iter()
                .zip(&b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>();
            assert!(
                (fast - scalar).abs() <= 1e-12 * (1.0 + scalar),
                "len {len}: {fast} vs {scalar}"
            );
        }
    }

    #[test]
    fn l1_kernel_matches_scalar_reference_at_every_tail_residue() {
        // Cover every residue mod KERNEL_LANES plus longer vectors.
        for len in 1..=(3 * KERNEL_LANES + 1) {
            let a: Vec<f64> = (0..len).map(|i| (i as f64) * 0.37 - 1.0).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64).sin()).collect();
            let fast = distance_l1(&a, &b);
            let scalar: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
            assert!(
                (fast - scalar).abs() <= 1e-12 * (1.0 + scalar),
                "len {len}: {fast} vs {scalar}"
            );
        }
    }

    #[test]
    fn vector_set_round_trips_rows() {
        let rows = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let set = VectorSet::from_rows(&rows);
        assert_eq!(set.len(), 2);
        assert_eq!(set.dims(), 3);
        assert_eq!(set.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(set.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(set.to_rows(), rows);
        assert_eq!(set.rows().count(), 2);
        assert_eq!(set.as_flat(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn vector_set_push_and_mutate() {
        let mut set = VectorSet::new(2);
        assert!(set.is_empty());
        set.push(&[1.0, 2.0]);
        set.push(&[3.0, 4.0]);
        set.row_mut(0)[1] = 9.0;
        assert_eq!(set.row(0), &[1.0, 9.0]);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn from_flat_checks_shape() {
        let set = VectorSet::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "whole rows")]
    fn from_flat_rejects_ragged_buffers() {
        let _ = VectorSet::from_flat(2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn push_rejects_wrong_dims() {
        let mut set = VectorSet::new(3);
        set.push(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn zero_dims_rejected() {
        let _ = VectorSet::new(0);
    }
}
