//! # cbsp-simpoint — SimPoint 3.0 reimplementation
//!
//! The phase-clustering engine of the paper's §2.3, rebuilt from the
//! published algorithm:
//!
//! 1. normalize interval frequency vectors ([`vector`]),
//! 2. reduce dimensionality with a random linear projection
//!    ([`Projection`]),
//! 3. run weighted k-means with k-means++ seeding over a range of k
//!    ([`kmeans()`]),
//! 4. score each clustering with the Bayesian Information Criterion and
//!    pick the smallest k near the best score ([`bic()`]),
//! 5. choose each cluster's centroid-nearest interval as its simulation
//!    point and weight it by the cluster's instruction share
//!    ([`analyze`]).
//!
//! Variable-length intervals are supported throughout: interval
//! instruction counts weight the clustering, the BIC, and the phase
//! weights (§3.2.4).
//!
//! ## Performance architecture
//!
//! Vectors live in a flat row-major [`VectorSet`] (one allocation, no
//! per-row pointer chase) and every distance goes through the unrolled
//! [`vector::distance_sq`] kernel. The k×restart search grid, the Lloyd
//! assignment loop, and normalization/projection all fan out over a
//! [`cbsp_par::Pool`] sized by [`SimPointConfig::threads`]; every
//! reduction is chunked with thread-count-independent boundaries and
//! merged in chunk order, so results are **bit-identical at any thread
//! count**.
//!
//! ## Example
//!
//! ```
//! use cbsp_simpoint::{analyze, SimPointConfig};
//!
//! // Six intervals alternating between two behaviours.
//! let vectors: Vec<Vec<f64>> = (0..6)
//!     .map(|i| if i % 2 == 0 { vec![9.0, 0.0] } else { vec![0.0, 9.0] })
//!     .collect();
//! let instrs = vec![1_000u64; 6];
//! let result = analyze(&vectors, &instrs, &SimPointConfig::default());
//! assert_eq!(result.k, 2);
//! assert!((result.total_weight() - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bic;
pub mod estimator;
pub mod hamerly;
pub mod kmeans;
pub mod projection;
pub mod select;
pub mod vector;

pub use bic::bic;
pub use cbsp_par::Pool;
pub use estimator::{
    BbvFeatures, BbvMavFeatures, Chosen, EarliestSelector, EstimatorConfig, FeatureBuilder,
    FeatureKind, NearestCentroidSelector, PhaseCtx, Selector, StratifiedSelector,
};
pub use hamerly::kmeans_hamerly_from;
pub use kmeans::{kmeans, kmeans_with, KMeansResult};
pub use projection::Projection;
pub use select::{analyze, RepresentativePolicy, SimPoint, SimPointConfig, SimPointResult};
pub use vector::{distance_l1, distance_sq, VectorSet};
