//! Weighted k-means with k-means++ seeding (paper §2.3 step 3).
//!
//! SimPoint 3.0 clusters projected interval vectors with k-means; in
//! VLI mode each vector carries a weight proportional to the
//! instructions its interval spans, so long intervals pull centroids
//! harder than short ones ("considers the number of instructions in
//! each interval during the clustering process", §3.2.4).
//!
//! ## Parallel Lloyd iteration
//!
//! [`kmeans_with`] runs each Lloyd iteration as one fused
//! assignment-and-partial-sum pass over fixed [`LLOYD_CHUNK`]-point
//! chunks of the data, merging per-chunk partial centroid sums *in
//! chunk order* on the calling thread. Chunk boundaries depend only on
//! the input size, so every floating-point reduction associates the
//! same way at any thread count: `kmeans_with` is bit-identical across
//! pools, and [`kmeans`] (the serial entry point) produces exactly the
//! same result.

use crate::vector::{distance_sq, VectorSet};
use cbsp_par::Pool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Points per Lloyd chunk. Fixed (never derived from the thread count)
/// so the reduction tree — and therefore every f64 result — is the same
/// at any parallelism level.
pub const LLOYD_CHUNK: usize = 256;

/// Result of one k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster centroids, `k` of them.
    pub centroids: VectorSet,
    /// Cluster label per input vector.
    pub labels: Vec<u32>,
    /// Weighted within-cluster sum of squared distances.
    pub wcss: f64,
    /// Lloyd iterations executed before convergence (or the cap).
    pub iterations: usize,
}

impl KMeansResult {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }
}

/// Per-chunk output of the fused assignment + partial-sum pass.
struct LloydPartial {
    labels: Vec<u32>,
    changed: bool,
    /// Flat `k × dims` weighted coordinate sums.
    sums: Vec<f64>,
    /// Weight mass per cluster.
    mass: Vec<f64>,
}

fn validate_inputs(data: &VectorSet, weights: &[f64], k: usize) {
    assert!(!data.is_empty(), "kmeans needs at least one vector");
    assert!(
        k >= 1 && k <= data.len(),
        "k={k} out of range for {} vectors",
        data.len()
    );
    assert_eq!(weights.len(), data.len(), "one weight per vector");
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and non-negative"
    );
}

/// Runs weighted k-means on `data`, serially.
///
/// `weights[i]` scales vector `i`'s influence on centroids and on the
/// objective. `seed` fixes the k-means++ initialization. Runs Lloyd
/// iterations until assignments stabilize or `max_iters` is reached.
/// Identical (bit-for-bit) to [`kmeans_with`] on any pool.
///
/// # Panics
///
/// Panics if `data` is empty, `k` is zero or exceeds `data.len()`,
/// `weights.len() != data.len()`, or any weight is negative or
/// non-finite.
pub fn kmeans(
    data: &VectorSet,
    weights: &[f64],
    k: usize,
    seed: u64,
    max_iters: usize,
) -> KMeansResult {
    kmeans_with(data, weights, k, seed, max_iters, &Pool::serial())
}

/// [`kmeans`] with the Lloyd iterations parallelized over `pool`.
///
/// The result is bit-identical at every thread count (see the module
/// docs for why), so callers may size the pool freely — including
/// nesting a serial pool inside an outer parallel search grid.
///
/// # Panics
///
/// Same contract as [`kmeans`].
pub fn kmeans_with(
    data: &VectorSet,
    weights: &[f64],
    k: usize,
    seed: u64,
    max_iters: usize,
    pool: &Pool,
) -> KMeansResult {
    validate_inputs(data, weights, k);
    let n = data.len();
    let dims = data.dims();

    let mut centroids = plus_plus_init(data, weights, k, seed);
    let mut labels = vec![0u32; n];
    let mut iterations = 0;

    for iter in 0..max_iters.max(1) {
        iterations = iter + 1;

        // Fused assignment + update accumulation: one parallel pass
        // computes each chunk's new labels and its partial weighted
        // centroid sums.
        let partials = pool.map_chunks(n, LLOYD_CHUNK, |range| {
            let mut part = LloydPartial {
                labels: Vec::with_capacity(range.len()),
                changed: false,
                sums: vec![0.0; k * dims],
                mass: vec![0.0; k],
            };
            for i in range {
                let v = data.row(i);
                let best = nearest(v, &centroids).0;
                if labels[i] != best as u32 {
                    part.changed = true;
                }
                part.labels.push(best as u32);
                part.mass[best] += weights[i];
                let sum = &mut part.sums[best * dims..(best + 1) * dims];
                for (s, x) in sum.iter_mut().zip(v) {
                    *s += weights[i] * x;
                }
            }
            part
        });

        // Merge in chunk order: the same left-to-right association at
        // any thread count.
        let mut changed = false;
        let mut sums = vec![0.0; k * dims];
        let mut mass = vec![0.0; k];
        let mut filled = 0;
        for part in partials {
            changed |= part.changed;
            labels[filled..filled + part.labels.len()].copy_from_slice(&part.labels);
            filled += part.labels.len();
            for (s, p) in sums.iter_mut().zip(&part.sums) {
                *s += p;
            }
            for (m, p) in mass.iter_mut().zip(&part.mass) {
                *m += p;
            }
        }
        if !changed && iter > 0 {
            break;
        }

        // Update step (weighted means); clusters with zero mass keep
        // their centroid until repair below.
        for (c, &m) in mass.iter().enumerate() {
            if m > 0.0 {
                let sum = &sums[c * dims..(c + 1) * dims];
                for (out, s) in centroids.row_mut(c).iter_mut().zip(sum) {
                    *out = s / m;
                }
            }
        }
        // Empty clusters: reseed to the point farthest from its own
        // (new) centroid — standard k-means repair, kept serial and in
        // cluster order so it is deterministic.
        for (c, &m) in mass.iter().enumerate() {
            if m <= 0.0 {
                let far = (0..n)
                    .max_by(|&i, &j| {
                        let a = distance_sq(data.row(i), centroids.row(labels[i] as usize));
                        let b = distance_sq(data.row(j), centroids.row(labels[j] as usize));
                        a.partial_cmp(&b).expect("distances are finite")
                    })
                    .expect("data nonempty");
                centroids.row_mut(c).copy_from_slice(data.row(far));
            }
        }
    }

    let wcss = pool
        .reduce_chunks(
            n,
            LLOYD_CHUNK,
            |range| {
                range
                    .map(|i| {
                        weights[i] * distance_sq(data.row(i), centroids.row(labels[i] as usize))
                    })
                    .fold(0.0f64, |a, b| a + b)
            },
            |a, b| a + b,
        )
        .unwrap_or(0.0);
    KMeansResult {
        centroids,
        labels,
        wcss,
        iterations,
    }
}

/// Index and squared distance of the centroid nearest to `v`.
#[inline]
pub fn nearest(v: &[f64], centroids: &VectorSet) -> (usize, f64) {
    let mut best = (0, f64::INFINITY);
    for (c, centroid) in centroids.rows().enumerate() {
        let d = distance_sq(v, centroid);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

/// k-means++ seeding: the first centroid is weight-proportionally
/// random; each next centroid is chosen with probability proportional
/// to `weight × distance²` from the nearest already-chosen centroid.
///
/// Degenerate distributions are well-defined: whenever the score mass
/// is zero (all-zero weights, or every point coinciding with a chosen
/// centroid — duplicate vectors), the draw falls back to a uniform
/// choice over all points (see `sample_index`'s contract, covered by
/// this module's tests).
///
/// # Panics
///
/// Same input contract as [`kmeans`].
pub fn plus_plus_init(data: &VectorSet, weights: &[f64], k: usize, seed: u64) -> VectorSet {
    validate_inputs(data, weights, k);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut centroids = VectorSet::with_capacity(data.dims(), k);

    let total_w: f64 = weights.iter().sum();
    let first = sample_index(&mut rng, weights, total_w);
    centroids.push(data.row(first));

    let mut dist: Vec<f64> = data
        .rows()
        .map(|v| distance_sq(v, centroids.row(0)))
        .collect();
    while centroids.len() < k {
        let scores: Vec<f64> = dist.iter().zip(weights).map(|(d, w)| d * w).collect();
        let total: f64 = scores.iter().sum();
        let next = sample_index(&mut rng, &scores, total);
        centroids.push(data.row(next));
        let newest = centroids.row(centroids.len() - 1);
        for (d, v) in dist.iter_mut().zip(data.rows()) {
            let nd = distance_sq(v, newest);
            if nd < *d {
                *d = nd;
            }
        }
    }
    centroids
}

/// Draws an index with probability proportional to `scores`.
///
/// Contract (the k-means++ degenerate-distribution audit):
/// * `total > 0` and finite: returns an index whose score is strictly
///   positive — a zero-score entry is never selected, even when the
///   running subtraction lands on one through floating-point error or a
///   zero-score tail.
/// * `total <= 0` or non-finite (all-zero scores): falls back to a
///   uniform draw over all indices, so the choice stays seeded-random
///   and well-defined rather than silently collapsing to index 0.
///
/// # Panics
///
/// Panics if `scores` is empty.
fn sample_index(rng: &mut StdRng, scores: &[f64], total: f64) -> usize {
    assert!(
        !scores.is_empty(),
        "cannot sample from an empty distribution"
    );
    if !(total > 0.0 && total.is_finite()) {
        return rng.gen_range(0..scores.len());
    }
    let mut t = rng.gen_range(0.0..total);
    let mut last_positive = None;
    for (i, &s) in scores.iter().enumerate() {
        if s > 0.0 {
            last_positive = Some(i);
            t -= s;
            if t <= 0.0 {
                return i;
            }
        }
    }
    last_positive.expect("positive total implies a positive score")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (VectorSet, Vec<f64>) {
        let mut data = VectorSet::new(2);
        for i in 0..10 {
            data.push(&[0.0 + (i as f64) * 0.01, 0.0]);
            data.push(&[10.0 + (i as f64) * 0.01, 10.0]);
        }
        let weights = vec![1.0; data.len()];
        (data, weights)
    }

    #[test]
    fn separates_two_obvious_blobs() {
        let (data, weights) = two_blobs();
        let r = kmeans(&data, &weights, 2, 1, 100);
        assert_eq!(r.k(), 2);
        // All even indices (blob A) share a label; odd (blob B) share
        // the other.
        let a = r.labels[0];
        let b = r.labels[1];
        assert_ne!(a, b);
        for i in 0..data.len() {
            assert_eq!(r.labels[i], if i % 2 == 0 { a } else { b });
        }
        assert!(r.wcss < 1.0, "tight blobs: wcss = {}", r.wcss);
    }

    #[test]
    fn k_equals_one_gives_weighted_mean() {
        let data = VectorSet::from_rows(&[vec![0.0], vec![10.0]]);
        let weights = vec![3.0, 1.0];
        let r = kmeans(&data, &weights, 1, 0, 50);
        assert!(
            (r.centroids.row(0)[0] - 2.5).abs() < 1e-9,
            "weighted mean 2.5"
        );
    }

    #[test]
    fn heavy_weight_pulls_the_centroid() {
        let data = VectorSet::from_rows(&[vec![0.0], vec![1.0], vec![100.0]]);
        let light = kmeans(&data, &[1.0, 1.0, 1.0], 1, 0, 50).centroids.row(0)[0];
        let heavy = kmeans(&data, &[1.0, 1.0, 10.0], 1, 0, 50).centroids.row(0)[0];
        assert!(heavy > light);
    }

    #[test]
    fn k_equals_n_gives_zero_wcss() {
        let (data, weights) = two_blobs();
        let r = kmeans(&data, &weights, data.len(), 5, 100);
        assert!(r.wcss < 1e-18);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (data, weights) = two_blobs();
        let a = kmeans(&data, &weights, 3, 9, 100);
        let b = kmeans(&data, &weights, 3, 9, 100);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.wcss, b.wcss);
    }

    #[test]
    fn pooled_run_is_bit_identical_to_serial() {
        // Enough points for several chunks at every thread count.
        let mut data = VectorSet::new(3);
        let mut weights = Vec::new();
        let mut x = 0x2468_ACE0u64;
        for _ in 0..(3 * LLOYD_CHUNK + 17) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            data.push(&[
                (x % 1000) as f64 * 0.01,
                ((x >> 10) % 1000) as f64 * 0.01,
                ((x >> 20) % 7) as f64,
            ]);
            weights.push(1.0 + ((x >> 30) % 5) as f64);
        }
        let serial = kmeans(&data, &weights, 6, 11, 100);
        for threads in [2, 3, 8] {
            let pooled = kmeans_with(&data, &weights, 6, 11, 100, &Pool::new(threads));
            assert_eq!(serial, pooled, "threads={threads} must match bit-for-bit");
            assert_eq!(serial.wcss.to_bits(), pooled.wcss.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn k_larger_than_n_panics() {
        let data = VectorSet::from_rows(&[vec![1.0]]);
        let _ = kmeans(&data, &[1.0], 2, 0, 10);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weights_panic() {
        let data = VectorSet::from_rows(&[vec![1.0], vec![2.0]]);
        let _ = kmeans(&data, &[1.0, -1.0], 1, 0, 10);
    }

    #[test]
    fn identical_points_do_not_crash() {
        let data = VectorSet::from_rows(&vec![vec![5.0, 5.0]; 8]);
        let r = kmeans(&data, &[1.0; 8], 3, 2, 50);
        assert_eq!(r.labels.len(), 8);
        assert!(r.wcss < 1e-18);
    }

    #[test]
    fn all_zero_weights_are_well_defined() {
        // Zero total mass degenerates every k-means++ draw and every
        // centroid update; the run must still produce a valid labelling
        // deterministically.
        let data = VectorSet::from_rows(&[vec![0.0, 0.0], vec![5.0, 0.0], vec![0.0, 5.0]]);
        let weights = [0.0; 3];
        let a = kmeans(&data, &weights, 2, 7, 50);
        let b = kmeans(&data, &weights, 2, 7, 50);
        assert_eq!(a, b, "deterministic under zero weights");
        assert_eq!(a.labels.len(), 3);
        assert!(a.labels.iter().all(|&l| (l as usize) < 2));
        assert_eq!(a.wcss, 0.0, "zero weights make the objective zero");
        assert!(a.centroids.as_flat().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn duplicate_vectors_fall_back_to_uniform_seeding() {
        // All points coincide: after the first centroid every k-means++
        // score is zero. Seeding must stay in range and vary with the
        // seed (uniform fallback), not pin to index 0.
        let data = VectorSet::from_rows(&vec![vec![3.0, 3.0]; 16]);
        let weights = vec![1.0; 16];
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..32 {
            let init = plus_plus_init(&data, &weights, 4, seed);
            assert_eq!(init.len(), 4);
            for row in init.rows() {
                assert_eq!(row, &[3.0, 3.0]);
            }
            // Record where the seeding's uniform draws land by running
            // the same rng protocol.
            let again = plus_plus_init(&data, &weights, 4, seed);
            assert_eq!(init, again, "deterministic per seed");
            seen.insert(format!("{:?}", init.as_flat()));
        }
        assert_eq!(seen.len(), 1, "identical points: all inits equal");
    }

    #[test]
    fn sample_index_never_selects_zero_scores() {
        let scores = [0.0, 3.0, 0.0, 5.0, 0.0];
        let total: f64 = scores.iter().sum();
        for seed in 0..64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let i = sample_index(&mut rng, &scores, total);
            assert!(i == 1 || i == 3, "seed {seed} picked zero-score {i}");
        }
    }

    #[test]
    fn sample_index_uniform_fallback_covers_the_range() {
        let scores = [0.0; 8];
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let i = sample_index(&mut rng, &scores, 0.0);
            assert!(i < 8);
            seen.insert(i);
        }
        assert!(
            seen.len() > 1,
            "uniform fallback must not collapse to one index: {seen:?}"
        );
    }
}
