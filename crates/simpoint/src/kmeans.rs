//! Weighted k-means with k-means++ seeding (paper §2.3 step 3).
//!
//! SimPoint 3.0 clusters projected interval vectors with k-means; in
//! VLI mode each vector carries a weight proportional to the
//! instructions its interval spans, so long intervals pull centroids
//! harder than short ones ("considers the number of instructions in
//! each interval during the clustering process", §3.2.4).

use crate::vector::distance_sq;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of one k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster centroids, `k` of them.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster label per input vector.
    pub labels: Vec<u32>,
    /// Weighted within-cluster sum of squared distances.
    pub wcss: f64,
    /// Lloyd iterations executed before convergence (or the cap).
    pub iterations: usize,
}

impl KMeansResult {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }
}

/// Runs weighted k-means on `data`.
///
/// `weights[i]` scales vector `i`'s influence on centroids and on the
/// objective. `seed` fixes the k-means++ initialization. Runs Lloyd
/// iterations until assignments stabilize or `max_iters` is reached.
///
/// # Panics
///
/// Panics if `data` is empty, `k` is zero or exceeds `data.len()`, or
/// `weights.len() != data.len()`.
pub fn kmeans(
    data: &[Vec<f64>],
    weights: &[f64],
    k: usize,
    seed: u64,
    max_iters: usize,
) -> KMeansResult {
    assert!(!data.is_empty(), "kmeans needs at least one vector");
    assert!(
        k >= 1 && k <= data.len(),
        "k={k} out of range for {} vectors",
        data.len()
    );
    assert_eq!(weights.len(), data.len(), "one weight per vector");
    let dims = data[0].len();

    let mut centroids = plus_plus_init(data, weights, k, seed);
    let mut labels = vec![0u32; data.len()];
    let mut iterations = 0;

    for iter in 0..max_iters.max(1) {
        iterations = iter + 1;
        // Assignment step.
        let mut changed = false;
        for (i, v) in data.iter().enumerate() {
            let best = nearest(v, &centroids).0 as u32;
            if labels[i] != best {
                labels[i] = best;
                changed = true;
            }
        }
        if !changed && iter > 0 {
            break;
        }
        // Update step (weighted means).
        let mut sums = vec![vec![0.0; dims]; k];
        let mut mass = vec![0.0; k];
        for (i, v) in data.iter().enumerate() {
            let c = labels[i] as usize;
            mass[c] += weights[i];
            for (s, x) in sums[c].iter_mut().zip(v) {
                *s += weights[i] * x;
            }
        }
        for c in 0..k {
            if mass[c] > 0.0 {
                for s in sums[c].iter_mut() {
                    *s /= mass[c];
                }
                centroids[c] = std::mem::take(&mut sums[c]);
            } else {
                // Empty cluster: reseed to the point farthest from its
                // centroid (standard k-means repair).
                let far = data
                    .iter()
                    .enumerate()
                    .max_by(|(i, v), (j, w)| {
                        let a = distance_sq(v, &centroids[labels[*i] as usize]);
                        let b = distance_sq(w, &centroids[labels[*j] as usize]);
                        a.partial_cmp(&b).expect("distances are finite")
                    })
                    .map(|(i, _)| i)
                    .expect("data nonempty");
                centroids[c] = data[far].clone();
            }
        }
    }

    let wcss = data
        .iter()
        .enumerate()
        .map(|(i, v)| weights[i] * distance_sq(v, &centroids[labels[i] as usize]))
        .sum();
    KMeansResult {
        centroids,
        labels,
        wcss,
        iterations,
    }
}

/// Index and squared distance of the centroid nearest to `v`.
pub fn nearest(v: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0, f64::INFINITY);
    for (c, centroid) in centroids.iter().enumerate() {
        let d = distance_sq(v, centroid);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

/// k-means++ seeding: the first centroid is weight-proportionally
/// random; each next centroid is chosen with probability proportional
/// to `weight × distance²` from the nearest already-chosen centroid.
pub fn plus_plus_init(data: &[Vec<f64>], weights: &[f64], k: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);

    let total_w: f64 = weights.iter().sum();
    let first = sample_index(&mut rng, weights, total_w);
    centroids.push(data[first].clone());

    let mut dist: Vec<f64> = data.iter().map(|v| distance_sq(v, &centroids[0])).collect();
    while centroids.len() < k {
        let scores: Vec<f64> = dist.iter().zip(weights).map(|(d, w)| d * w).collect();
        let total: f64 = scores.iter().sum();
        let next = if total > 0.0 {
            sample_index(&mut rng, &scores, total)
        } else {
            // All points coincide with a centroid; any point will do.
            rng.gen_range(0..data.len())
        };
        centroids.push(data[next].clone());
        let newest = centroids.last().expect("just pushed");
        for (d, v) in dist.iter_mut().zip(data) {
            let nd = distance_sq(v, newest);
            if nd < *d {
                *d = nd;
            }
        }
    }
    centroids
}

fn sample_index(rng: &mut StdRng, scores: &[f64], total: f64) -> usize {
    if total <= 0.0 {
        return 0;
    }
    let mut t = rng.gen_range(0.0..total);
    for (i, s) in scores.iter().enumerate() {
        t -= s;
        if t <= 0.0 {
            return i;
        }
    }
    scores.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut data = Vec::new();
        for i in 0..10 {
            data.push(vec![0.0 + (i as f64) * 0.01, 0.0]);
            data.push(vec![10.0 + (i as f64) * 0.01, 10.0]);
        }
        let weights = vec![1.0; data.len()];
        (data, weights)
    }

    #[test]
    fn separates_two_obvious_blobs() {
        let (data, weights) = two_blobs();
        let r = kmeans(&data, &weights, 2, 1, 100);
        assert_eq!(r.k(), 2);
        // All even indices (blob A) share a label; odd (blob B) share
        // the other.
        let a = r.labels[0];
        let b = r.labels[1];
        assert_ne!(a, b);
        for i in 0..data.len() {
            assert_eq!(r.labels[i], if i % 2 == 0 { a } else { b });
        }
        assert!(r.wcss < 1.0, "tight blobs: wcss = {}", r.wcss);
    }

    #[test]
    fn k_equals_one_gives_weighted_mean() {
        let data = vec![vec![0.0], vec![10.0]];
        let weights = vec![3.0, 1.0];
        let r = kmeans(&data, &weights, 1, 0, 50);
        assert!((r.centroids[0][0] - 2.5).abs() < 1e-9, "weighted mean 2.5");
    }

    #[test]
    fn heavy_weight_pulls_the_centroid() {
        let data = vec![vec![0.0], vec![1.0], vec![100.0]];
        let light = kmeans(&data, &[1.0, 1.0, 1.0], 1, 0, 50).centroids[0][0];
        let heavy = kmeans(&data, &[1.0, 1.0, 10.0], 1, 0, 50).centroids[0][0];
        assert!(heavy > light);
    }

    #[test]
    fn k_equals_n_gives_zero_wcss() {
        let (data, weights) = two_blobs();
        let r = kmeans(&data, &weights, data.len(), 5, 100);
        assert!(r.wcss < 1e-18);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (data, weights) = two_blobs();
        let a = kmeans(&data, &weights, 3, 9, 100);
        let b = kmeans(&data, &weights, 3, 9, 100);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.wcss, b.wcss);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn k_larger_than_n_panics() {
        let _ = kmeans(&[vec![1.0]], &[1.0], 2, 0, 10);
    }

    #[test]
    fn identical_points_do_not_crash() {
        let data = vec![vec![5.0, 5.0]; 8];
        let r = kmeans(&data, &[1.0; 8], 3, 2, 50);
        assert_eq!(r.labels.len(), 8);
        assert!(r.wcss < 1e-18);
    }
}
