//! Bayesian Information Criterion scoring (paper §2.3 step 4).
//!
//! SimPoint scores each candidate clustering with the BIC of Pelleg &
//! Moore's X-means (the paper's reference \[12\]): the log-likelihood of
//! the data under a spherical identical-variance Gaussian mixture at the
//! centroids, penalized by model complexity. Weighted vectors are
//! treated as fractional multiplicities.

use crate::kmeans::KMeansResult;
use crate::vector::VectorSet;

/// BIC of `clustering` on weighted `data`. Higher is better.
///
/// # Panics
///
/// Debug-asserts that `weights` matches the labelled data size.
pub fn bic(data: &VectorSet, weights: &[f64], clustering: &KMeansResult) -> f64 {
    debug_assert_eq!(data.len(), weights.len());
    debug_assert_eq!(data.len(), clustering.labels.len());
    let k = clustering.k();
    let d = data.dims() as f64;
    let r: f64 = weights.iter().sum();

    // Per-cluster effective sizes.
    let mut r_j = vec![0.0f64; k];
    for (i, &label) in clustering.labels.iter().enumerate() {
        r_j[label as usize] += weights[i];
    }

    // Pooled maximum-likelihood variance per dimension.
    let denom = (d * (r - k as f64)).max(f64::MIN_POSITIVE);
    let sigma_sq = (clustering.wcss / denom).max(1e-12);

    // Log-likelihood of the mixture.
    let mut llh = 0.0;
    for &rj in &r_j {
        if rj > 0.0 {
            llh += rj * (rj / r).ln();
        }
    }
    llh -= (r * d / 2.0) * (2.0 * std::f64::consts::PI * sigma_sq).ln();
    llh -= d * (r - k as f64) / 2.0;

    // Complexity penalty: K-1 mixing weights + K*d centroid
    // coordinates + 1 shared variance.
    let p = (k as f64) * (d + 1.0);
    llh - (p / 2.0) * r.max(1.0 + 1e-9).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::kmeans;

    fn blobs(centers: &[f64], per: usize, spread: f64) -> (VectorSet, Vec<f64>) {
        let mut data = VectorSet::new(2);
        for &c in centers {
            for i in 0..per {
                data.push(&[c + spread * (i as f64 / per as f64 - 0.5), c]);
            }
        }
        let n = data.len();
        (data, vec![1.0; n])
    }

    #[test]
    fn bic_prefers_true_k_over_underfit() {
        let (data, w) = blobs(&[0.0, 50.0, 100.0], 12, 1.0);
        let k1 = kmeans(&data, &w, 1, 3, 100);
        let k3 = kmeans(&data, &w, 3, 3, 100);
        assert!(
            bic(&data, &w, &k3) > bic(&data, &w, &k1),
            "true k=3 must beat k=1"
        );
    }

    #[test]
    fn bic_penalizes_gross_overfit() {
        let (data, w) = blobs(&[0.0, 50.0], 16, 2.0);
        let k2 = kmeans(&data, &w, 2, 3, 100);
        let k20 = kmeans(&data, &w, 20, 3, 100);
        assert!(
            bic(&data, &w, &k2) > bic(&data, &w, &k20),
            "k=2 must beat k=20 on two blobs"
        );
    }

    #[test]
    fn bic_is_finite_in_degenerate_cases() {
        // All-identical points, k close to n.
        let data = VectorSet::from_rows(&vec![vec![1.0, 1.0]; 6]);
        let w = vec![1.0; 6];
        for k in 1..=5 {
            let r = kmeans(&data, &w, k, 0, 20);
            let s = bic(&data, &w, &r);
            assert!(s.is_finite(), "k={k}: BIC {s} not finite");
        }
    }
}
