//! Pluggable estimation methodology: feature builders × selectors.
//!
//! The paper fixes one methodology — cluster basic-block vectors, pick
//! each cluster's centroid-nearest interval, weight by instruction
//! share. Two later papers supersede parts of that recipe:
//!
//! * *Memory Access Vectors* (arxiv 2506.02344) augments BBVs with
//!   memory-access features so clusters that execute the same blocks
//!   against different working sets stop being conflated
//!   ([`FeatureKind::BbvMav`]).
//! * *CPU Simulation Using Two-Phase Stratified Sampling* (arxiv
//!   2603.22605) replaces pick-one-representative with per-cluster
//!   stratified sampling and a variance-derived confidence interval
//!   ([`RepresentativePolicy::Stratified`]).
//!
//! This module makes the methodology a first-class axis: a
//! [`FeatureBuilder`] decides what vector each interval contributes to
//! the clustering, a [`Selector`] decides which interval(s) represent a
//! phase and with what within-phase share, and an [`EstimatorConfig`]
//! names a (features, selector) pair. Canonical pairs have short tags
//! (`bbv`, `bbv+mav`, `early`, `stratified`) used as CLI values, cache
//! namespaces, and gate column names.
//!
//! Every selector is deterministic: members arrive in ascending
//! interval order, all reductions use strict first-minimum ties, and no
//! randomness is involved — so all estimator lanes inherit the
//! engine's bit-identical-at-any-thread-count contract.

use crate::select::RepresentativePolicy;
use serde::{Deserialize, Serialize};

/// Which per-interval feature vector feeds the clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Basic-block vectors only — the paper's §2.3 features.
    Bbv,
    /// BBVs concatenated with memory-access vectors (arxiv
    /// 2506.02344): each family is L1-normalized to mass 0.5 before
    /// concatenation so both contribute equally regardless of raw
    /// scale. The MAV comes from the access events already recorded in
    /// the replay `EventTrace`, so no re-interpretation is needed.
    BbvMav,
}

// Not derived: the vendored serde derive parser does not understand a
// `#[default]` variant attribute.
#[allow(clippy::derivable_impls)]
impl Default for FeatureKind {
    fn default() -> Self {
        FeatureKind::Bbv
    }
}

impl FeatureKind {
    /// Short tag used in cache namespaces and gate columns.
    pub fn tag(&self) -> &'static str {
        match self {
            FeatureKind::Bbv => "bbv",
            FeatureKind::BbvMav => "bbv+mav",
        }
    }

    /// The feature builder implementing this kind.
    pub fn builder(&self) -> Box<dyn FeatureBuilder> {
        match self {
            FeatureKind::Bbv => Box::new(BbvFeatures),
            FeatureKind::BbvMav => Box::new(BbvMavFeatures),
        }
    }

    /// Whether this kind needs memory-access vectors recorded during
    /// profiling.
    pub fn wants_mav(&self) -> bool {
        matches!(self, FeatureKind::BbvMav)
    }
}

/// Builds the per-interval feature vector fed to the clustering.
pub trait FeatureBuilder {
    /// Short name (matches [`FeatureKind::tag`]).
    fn name(&self) -> &'static str;

    /// Combines one interval's BBV and MAV into its feature vector.
    /// `mav` is empty when memory accesses were not recorded; builders
    /// that need it must tolerate that by falling back to the BBV.
    fn features(&self, bbv: &[f64], mav: &[f64]) -> Vec<f64>;
}

/// BBV passthrough: the clustering sees exactly the profiled vector.
pub struct BbvFeatures;

impl FeatureBuilder for BbvFeatures {
    fn name(&self) -> &'static str {
        "bbv"
    }

    fn features(&self, bbv: &[f64], _mav: &[f64]) -> Vec<f64> {
        bbv.to_vec()
    }
}

/// BBV ⧺ MAV: each family L1-normalized to mass 0.5, concatenated.
pub struct BbvMavFeatures;

impl FeatureBuilder for BbvMavFeatures {
    fn name(&self) -> &'static str {
        "bbv+mav"
    }

    fn features(&self, bbv: &[f64], mav: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(bbv.len() + mav.len());
        scaled_into(&mut out, bbv, 0.5);
        scaled_into(&mut out, mav, 0.5);
        out
    }
}

/// Appends `v` scaled so its L1 mass becomes `mass` (unscaled if the
/// family is all-zero — an empty working set contributes nothing).
fn scaled_into(out: &mut Vec<f64>, v: &[f64], mass: f64) {
    let total: f64 = v.iter().map(|x| x.abs()).sum();
    if total > 0.0 {
        out.extend(v.iter().map(|x| x * mass / total));
    } else {
        out.extend_from_slice(v);
    }
}

/// One representative chosen inside a phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chosen {
    /// Global interval index of the representative.
    pub interval: usize,
    /// Fraction of the phase this representative stands for, in
    /// `(0, 1]`; a phase's shares sum to 1.
    pub share: f64,
}

/// Everything a [`Selector`] may look at for one phase.
pub struct PhaseCtx<'a> {
    /// Member interval indices, in ascending interval order.
    pub members: &'a [usize],
    /// Squared distance to the phase centroid, aligned with `members`.
    pub dists: &'a [f64],
    /// Global per-interval instruction counts.
    pub instr_counts: &'a [u64],
}

impl PhaseCtx<'_> {
    /// Instruction mass of `members[lo..hi]`.
    fn mass(&self, lo: usize, hi: usize) -> f64 {
        self.members[lo..hi]
            .iter()
            .map(|&i| self.instr_counts[i] as f64)
            .sum()
    }
}

/// Chooses which interval(s) represent a phase, and their shares.
pub trait Selector {
    /// Short name used in diagnostics.
    fn name(&self) -> &'static str;

    /// Selects representatives for one phase. Must be deterministic
    /// and return at least one [`Chosen`] whose shares sum to 1.
    fn select(&self, ctx: &PhaseCtx<'_>) -> Vec<Chosen>;
}

/// Index of the first minimum of `dists` (strict `<`: earliest wins).
fn argmin_first(dists: &[f64]) -> usize {
    let mut best = 0;
    for (j, &d) in dists.iter().enumerate().skip(1) {
        if d < dists[best] {
            best = j;
        }
    }
    best
}

/// SimPoint's default: the centroid-nearest member (paper §2.3 step 5).
pub struct NearestCentroidSelector;

impl Selector for NearestCentroidSelector {
    fn name(&self) -> &'static str {
        "nearest-centroid"
    }

    fn select(&self, ctx: &PhaseCtx<'_>) -> Vec<Chosen> {
        let j = argmin_first(ctx.dists);
        vec![Chosen {
            interval: ctx.members[j],
            share: 1.0,
        }]
    }
}

/// SimPoint 3.0's early points: the earliest member within `tolerance`
/// (relative to the phase's distance spread) of the best distance.
pub struct EarliestSelector {
    /// Allowed relative distance slack in `[0, 1]`.
    pub tolerance: f64,
}

impl Selector for EarliestSelector {
    fn name(&self) -> &'static str {
        "early"
    }

    fn select(&self, ctx: &PhaseCtx<'_>) -> Vec<Chosen> {
        let best_j = argmin_first(ctx.dists);
        let best = ctx.dists[best_j];
        let worst = ctx.dists.iter().copied().fold(best, f64::max);
        let cutoff = best + self.tolerance.clamp(0.0, 1.0) * (worst - best);
        let j = ctx
            .dists
            .iter()
            .position(|&d| d <= cutoff + 1e-15)
            .unwrap_or(best_j);
        vec![Chosen {
            interval: ctx.members[j],
            share: 1.0,
        }]
    }
}

/// Two-phase stratified sampling (arxiv 2603.22605): split each phase
/// into up to `per_cluster` contiguous strata (in interval order) and
/// pick the centroid-nearest member of each stratum, sharing the phase
/// weight by stratum instruction mass.
///
/// Degenerate-case contract (mirrors the k-means++
/// degenerate-distribution audit in [`crate::kmeans`]):
///
/// * a single-member phase yields exactly one representative with
///   share 1,
/// * `per_cluster` larger than the phase selects every member exactly
///   once (never a duplicate, never a panic),
/// * zero-variance phases (all distances equal) pick each stratum's
///   earliest member — ties never depend on float noise or iteration
///   order,
/// * zero instruction mass falls back to stratum-size shares, so the
///   shares still sum to 1 and stay well-defined.
pub struct StratifiedSelector {
    /// Representatives per phase (clamped to the phase size; min 1).
    pub per_cluster: usize,
}

impl Selector for StratifiedSelector {
    fn name(&self) -> &'static str {
        "stratified"
    }

    fn select(&self, ctx: &PhaseCtx<'_>) -> Vec<Chosen> {
        let n = ctx.members.len();
        let m = self.per_cluster.clamp(1, n);
        let phase_mass = ctx.mass(0, n);
        let mut chosen = Vec::with_capacity(m);
        for s in 0..m {
            // Contiguous strata in interval order; never empty because
            // m ≤ n makes each floor boundary advance by ≥ 1.
            let lo = s * n / m;
            let hi = (s + 1) * n / m;
            let j = lo + argmin_first(&ctx.dists[lo..hi]);
            let share = if phase_mass > 0.0 {
                ctx.mass(lo, hi) / phase_mass
            } else {
                (hi - lo) as f64 / n as f64
            };
            chosen.push(Chosen {
                interval: ctx.members[j],
                share,
            });
        }
        chosen
    }
}

impl RepresentativePolicy {
    /// The selector implementing this policy.
    pub fn selector(&self) -> Box<dyn Selector> {
        match *self {
            RepresentativePolicy::NearestCentroid => Box::new(NearestCentroidSelector),
            RepresentativePolicy::Earliest { tolerance } => {
                Box::new(EarliestSelector { tolerance })
            }
            RepresentativePolicy::Stratified { per_cluster } => {
                Box::new(StratifiedSelector { per_cluster })
            }
        }
    }
}

/// A named (feature builder, selector) pair — the estimation
/// methodology as a selectable axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimatorConfig {
    /// What vector each interval contributes to the clustering.
    pub features: FeatureKind,
    /// How representatives are chosen within each phase.
    pub selector: RepresentativePolicy,
}

// Not derived: the vendored serde derive parser does not understand a
// `#[default]` variant attribute.
#[allow(clippy::derivable_impls)]
impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            features: FeatureKind::Bbv,
            selector: RepresentativePolicy::NearestCentroid,
        }
    }
}

impl EstimatorConfig {
    /// Early-points tolerance used by the canonical `early` lane.
    pub const EARLY_TOLERANCE: f64 = 0.5;

    /// Representatives per cluster used by the canonical `stratified`
    /// lane.
    pub const STRATIFIED_PER_CLUSTER: usize = 3;

    /// The canonical lane tags accepted by [`EstimatorConfig::parse`].
    pub const KNOWN_TAGS: [&'static str; 4] = ["bbv", "bbv+mav", "early", "stratified"];

    /// Parses a canonical lane tag.
    pub fn parse(s: &str) -> Option<EstimatorConfig> {
        match s {
            "bbv" => Some(EstimatorConfig::default()),
            "bbv+mav" => Some(EstimatorConfig {
                features: FeatureKind::BbvMav,
                selector: RepresentativePolicy::NearestCentroid,
            }),
            "early" => Some(EstimatorConfig {
                features: FeatureKind::Bbv,
                selector: RepresentativePolicy::Earliest {
                    tolerance: Self::EARLY_TOLERANCE,
                },
            }),
            "stratified" => Some(EstimatorConfig {
                features: FeatureKind::Bbv,
                selector: RepresentativePolicy::Stratified {
                    per_cluster: Self::STRATIFIED_PER_CLUSTER,
                },
            }),
            _ => None,
        }
    }

    /// Canonical tag when the pair has one, else a composite
    /// `features@selector` form. Tags name lanes in cache namespaces,
    /// gate columns, and CLI output; the structured config (not the
    /// tag) is what cache *keys* hash, so distinct non-canonical
    /// parameters never collide.
    pub fn tag(&self) -> String {
        match (self.features, self.selector) {
            (FeatureKind::Bbv, RepresentativePolicy::NearestCentroid) => "bbv".into(),
            (FeatureKind::BbvMav, RepresentativePolicy::NearestCentroid) => "bbv+mav".into(),
            (FeatureKind::Bbv, RepresentativePolicy::Earliest { tolerance })
                if tolerance == Self::EARLY_TOLERANCE =>
            {
                "early".into()
            }
            (FeatureKind::Bbv, RepresentativePolicy::Stratified { per_cluster })
                if per_cluster == Self::STRATIFIED_PER_CLUSTER =>
            {
                "stratified".into()
            }
            (f, RepresentativePolicy::Earliest { tolerance }) => {
                format!("{}@early{tolerance}", f.tag())
            }
            (f, RepresentativePolicy::Stratified { per_cluster }) => {
                format!("{}@stratified{per_cluster}", f.tag())
            }
        }
    }

    /// Whether this is the default lane (nearest-centroid BBV), whose
    /// cache keys and results must stay byte-identical to the
    /// pre-estimator pipeline.
    pub fn is_default(&self) -> bool {
        *self == EstimatorConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(members: &'a [usize], dists: &'a [f64], instrs: &'a [u64]) -> PhaseCtx<'a> {
        PhaseCtx {
            members,
            dists,
            instr_counts: instrs,
        }
    }

    #[test]
    fn canonical_tags_round_trip() {
        for tag in EstimatorConfig::KNOWN_TAGS {
            let e = EstimatorConfig::parse(tag).expect("known tag parses");
            assert_eq!(e.tag(), tag, "tag round-trips");
        }
        assert!(EstimatorConfig::parse("bogus").is_none());
        assert!(EstimatorConfig::parse("bbv").unwrap().is_default());
        assert!(!EstimatorConfig::parse("stratified").unwrap().is_default());
    }

    #[test]
    fn non_canonical_pairs_get_composite_tags() {
        let e = EstimatorConfig {
            features: FeatureKind::BbvMav,
            selector: RepresentativePolicy::Stratified { per_cluster: 5 },
        };
        assert_eq!(e.tag(), "bbv+mav@stratified5");
    }

    #[test]
    fn bbv_features_pass_through() {
        let b = FeatureKind::Bbv.builder();
        assert_eq!(b.features(&[1.0, 2.0], &[9.0]), vec![1.0, 2.0]);
    }

    #[test]
    fn bbv_mav_features_balance_both_families() {
        let b = FeatureKind::BbvMav.builder();
        let v = b.features(&[4.0, 0.0], &[1.0, 1.0, 2.0]);
        assert_eq!(v.len(), 5);
        let bbv_mass: f64 = v[..2].iter().sum();
        let mav_mass: f64 = v[2..].iter().sum();
        assert!((bbv_mass - 0.5).abs() < 1e-12);
        assert!((mav_mass - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bbv_mav_features_tolerate_missing_mav() {
        let b = FeatureKind::BbvMav.builder();
        let v = b.features(&[4.0, 4.0], &[]);
        assert_eq!(v.len(), 2);
        assert!((v.iter().sum::<f64>() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nearest_picks_first_minimum() {
        let sel = NearestCentroidSelector;
        let c = sel.select(&ctx(&[3, 7, 9], &[0.5, 0.2, 0.2], &[1; 10]));
        assert_eq!(
            c,
            vec![Chosen {
                interval: 7,
                share: 1.0
            }]
        );
    }

    #[test]
    fn stratified_single_member_phase() {
        let sel = StratifiedSelector { per_cluster: 3 };
        let c = sel.select(&ctx(&[4], &[0.0], &[1; 5]));
        assert_eq!(
            c,
            vec![Chosen {
                interval: 4,
                share: 1.0
            }]
        );
    }

    #[test]
    fn stratified_caps_at_phase_size_without_duplicates() {
        let sel = StratifiedSelector { per_cluster: 10 };
        let members = [1, 3, 5];
        let c = sel.select(&ctx(&members, &[0.3, 0.1, 0.2], &[2; 6]));
        assert_eq!(c.len(), 3, "one per member, never more");
        let picked: Vec<usize> = c.iter().map(|x| x.interval).collect();
        assert_eq!(picked, vec![1, 3, 5]);
        let total: f64 = c.iter().map(|x| x.share).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stratified_zero_variance_picks_stratum_earliest() {
        let sel = StratifiedSelector { per_cluster: 2 };
        let members = [2, 4, 6, 8];
        let c = sel.select(&ctx(&members, &[0.7; 4], &[1; 10]));
        assert_eq!(c.iter().map(|x| x.interval).collect::<Vec<_>>(), [2, 6]);
    }

    #[test]
    fn stratified_shares_follow_instruction_mass() {
        let sel = StratifiedSelector { per_cluster: 2 };
        let members = [0, 1, 2, 3];
        let mut instrs = vec![0u64; 4];
        instrs[0] = 900;
        instrs[1] = 100;
        instrs[2] = 500;
        instrs[3] = 500;
        let c = sel.select(&ctx(&members, &[0.0; 4], &instrs));
        assert!((c[0].share - 0.5).abs() < 1e-12);
        assert!((c[1].share - 0.5).abs() < 1e-12);
        let total: f64 = c.iter().map(|x| x.share).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stratified_zero_mass_falls_back_to_sizes() {
        let sel = StratifiedSelector { per_cluster: 2 };
        let members = [0, 1, 2];
        let c = sel.select(&ctx(&members, &[0.0; 3], &[0; 3]));
        let total: f64 = c.iter().map(|x| x.share).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
