//! Hamerly's accelerated k-means.
//!
//! Greg Hamerly — an author of both SimPoint 3.0 and this paper —
//! later published an exact accelerated k-means ("Making k-means even
//! faster", SDM 2010) that skips most distance computations using one
//! upper bound per point (to its assigned centroid) and one lower bound
//! (to its second-closest centroid). This module implements that
//! algorithm as a drop-in alternative to the Lloyd iteration in
//! [`kmeans`](crate::kmeans::kmeans): given the same initialization it converges to the
//! same fixed point, only faster — which the equivalence tests and the
//! `simpoint_micro` benchmarks verify.
//!
//! The algorithm's point-skipping control flow is inherently irregular,
//! so this path stays serial; it operates on the same flat
//! [`VectorSet`] storage as the parallel Lloyd engine and benefits from
//! the same cache-friendly row layout and unrolled distance kernel.

use crate::kmeans::KMeansResult;
use crate::vector::{distance_sq, VectorSet};

/// Runs Hamerly-accelerated k-means from explicit initial centroids.
///
/// Exact: produces the same result as plain Lloyd iteration from the
/// same starting centroids (up to floating-point associativity).
///
/// # Panics
///
/// Panics if inputs are empty or sizes mismatch.
pub fn kmeans_hamerly_from(
    data: &VectorSet,
    weights: &[f64],
    mut centroids: VectorSet,
    max_iters: usize,
) -> KMeansResult {
    assert!(!data.is_empty(), "kmeans needs at least one vector");
    assert_eq!(weights.len(), data.len(), "one weight per vector");
    let k = centroids.len();
    assert!(k >= 1 && k <= data.len(), "k out of range");
    let dims = data.dims();
    assert_eq!(dims, centroids.dims(), "centroid dimensionality mismatch");

    // Initial assignment with full distance computations, establishing
    // the bounds.
    let mut labels = vec![0u32; data.len()];
    let mut upper = vec![0.0f64; data.len()]; // distance to assigned centroid
    let mut lower = vec![0.0f64; data.len()]; // distance to 2nd closest
    for (i, v) in data.rows().enumerate() {
        let (a, du, dl) = two_nearest(v, &centroids);
        labels[i] = a as u32;
        upper[i] = du;
        lower[i] = dl;
    }

    // Bound-effectiveness tallies, kept in locals (a register increment
    // per point) and merged into the trace counters once per run.
    let mut bound_skips = 0u64;
    let mut tighten_skips = 0u64;
    let mut full_recomputes = 0u64;

    let mut iterations = 0;
    for iter in 0..max_iters.max(1) {
        iterations = iter + 1;

        // Move centroids to weighted means of their members.
        let mut sums = vec![0.0f64; k * dims];
        let mut mass = vec![0.0f64; k];
        for (i, v) in data.rows().enumerate() {
            let c = labels[i] as usize;
            mass[c] += weights[i];
            for (s, x) in sums[c * dims..(c + 1) * dims].iter_mut().zip(v) {
                *s += weights[i] * x;
            }
        }
        let mut moved = vec![0.0f64; k];
        let mut max_moved = 0.0f64;
        let mut second_moved = 0.0f64;
        let mut scratch = vec![0.0f64; dims];
        for c in 0..k {
            let old = centroids.row(c);
            if mass[c] > 0.0 {
                for (out, s) in scratch.iter_mut().zip(&sums[c * dims..(c + 1) * dims]) {
                    *out = s / mass[c];
                }
                moved[c] = distance_sq(&scratch, old).sqrt();
                centroids.row_mut(c).copy_from_slice(&scratch);
            } else {
                // Empty cluster: keep it in place (plain Lloyd repair
                // strategies differ here; staying put keeps the
                // algorithm exact w.r.t. its own fixed point).
                moved[c] = 0.0;
            }
            if moved[c] > max_moved {
                second_moved = max_moved;
                max_moved = moved[c];
            } else if moved[c] > second_moved {
                second_moved = moved[c];
            }
        }
        if max_moved == 0.0 && iter > 0 {
            break; // converged
        }

        // Half the minimum distance from each centroid to another
        // centroid: if upper[i] is below this, the point cannot switch.
        let mut half_min_dist = vec![f64::INFINITY; k];
        for (a, slot) in half_min_dist.iter_mut().enumerate() {
            for b in 0..k {
                if a != b {
                    let d = distance_sq(centroids.row(a), centroids.row(b)).sqrt() / 2.0;
                    if d < *slot {
                        *slot = d;
                    }
                }
            }
        }

        // Update bounds and reassign only where the bounds fail.
        for (i, v) in data.rows().enumerate() {
            let a = labels[i] as usize;
            upper[i] += moved[a];
            // The second-closest centroid moved at most max_moved (or
            // second_moved when the assigned centroid was the max mover).
            lower[i] -= if moved[a] == max_moved {
                second_moved.max(max_moved)
            } else {
                max_moved
            };

            let bound = lower[i].max(half_min_dist[a]);
            if upper[i] <= bound {
                bound_skips += 1;
                continue; // cannot have changed assignment
            }
            // Tighten the upper bound; re-check.
            upper[i] = distance_sq(v, centroids.row(a)).sqrt();
            if upper[i] <= bound {
                tighten_skips += 1;
                continue;
            }
            // Full recomputation for this point.
            full_recomputes += 1;
            let (na, du, dl) = two_nearest(v, &centroids);
            labels[i] = na as u32;
            upper[i] = du;
            lower[i] = dl;
        }
    }

    cbsp_trace::add("simpoint/hamerly_bound_skips", bound_skips);
    cbsp_trace::add("simpoint/hamerly_tighten_skips", tighten_skips);
    cbsp_trace::add("simpoint/hamerly_full_recomputes", full_recomputes);

    let wcss = data
        .rows()
        .enumerate()
        .map(|(i, v)| weights[i] * distance_sq(v, centroids.row(labels[i] as usize)))
        .sum();
    KMeansResult {
        centroids,
        labels,
        wcss,
        iterations,
    }
}

/// Returns `(argmin, d_min, d_second)` over centroid *Euclidean*
/// distances.
fn two_nearest(v: &[f64], centroids: &VectorSet) -> (usize, f64, f64) {
    let mut best = (0usize, f64::INFINITY);
    let mut second = f64::INFINITY;
    for (c, centroid) in centroids.rows().enumerate() {
        let d = distance_sq(v, centroid).sqrt();
        if d < best.1 {
            second = best.1;
            best = (c, d);
        } else if d < second {
            second = d;
        }
    }
    (best.0, best.1, second)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per: usize, centers: &[(f64, f64)]) -> (VectorSet, Vec<f64>) {
        let mut data = VectorSet::new(2);
        let mut x = 0x1234_5678u64;
        for &(cx, cy) in centers {
            for _ in 0..n_per {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let jx = (x % 1000) as f64 / 1000.0;
                let jy = ((x >> 10) % 1000) as f64 / 1000.0;
                data.push(&[cx + jx, cy + jy]);
            }
        }
        let w = vec![1.0; data.len()];
        (data, w)
    }

    fn init_from(data: &VectorSet, indices: &[usize]) -> VectorSet {
        let mut init = VectorSet::with_capacity(data.dims(), indices.len());
        for &i in indices {
            init.push(data.row(i));
        }
        init
    }

    /// Plain Lloyd from the same start, as the ground truth.
    fn lloyd_from(
        data: &VectorSet,
        weights: &[f64],
        mut centroids: VectorSet,
        max_iters: usize,
    ) -> KMeansResult {
        let k = centroids.len();
        let dims = data.dims();
        let mut labels = vec![0u32; data.len()];
        for (i, v) in data.rows().enumerate() {
            labels[i] = crate::kmeans::nearest(v, &centroids).0 as u32;
        }
        let mut iterations = 0;
        for iter in 0..max_iters {
            iterations = iter + 1;
            let mut sums = vec![0.0f64; k * dims];
            let mut mass = vec![0.0f64; k];
            for (i, v) in data.rows().enumerate() {
                let c = labels[i] as usize;
                mass[c] += weights[i];
                for (s, x) in sums[c * dims..(c + 1) * dims].iter_mut().zip(v) {
                    *s += weights[i] * x;
                }
            }
            let mut any_moved = false;
            for c in 0..k {
                if mass[c] > 0.0 {
                    let new: Vec<f64> = sums[c * dims..(c + 1) * dims]
                        .iter()
                        .map(|s| s / mass[c])
                        .collect();
                    if distance_sq(&new, centroids.row(c)) > 0.0 {
                        any_moved = true;
                    }
                    centroids.row_mut(c).copy_from_slice(&new);
                }
            }
            if !any_moved && iter > 0 {
                break;
            }
            for (i, v) in data.rows().enumerate() {
                labels[i] = crate::kmeans::nearest(v, &centroids).0 as u32;
            }
        }
        let wcss = data
            .rows()
            .enumerate()
            .map(|(i, v)| weights[i] * distance_sq(v, centroids.row(labels[i] as usize)))
            .sum();
        KMeansResult {
            centroids,
            labels,
            wcss,
            iterations,
        }
    }

    #[test]
    fn matches_lloyd_on_separated_blobs() {
        let (data, w) = blobs(40, &[(0.0, 0.0), (20.0, 0.0), (0.0, 20.0)]);
        let init = init_from(&data, &[0, 40, 80]);
        let fast = kmeans_hamerly_from(&data, &w, init.clone(), 100);
        let slow = lloyd_from(&data, &w, init, 100);
        assert_eq!(fast.labels, slow.labels);
        assert!((fast.wcss - slow.wcss).abs() < 1e-9 * (1.0 + slow.wcss));
    }

    #[test]
    fn matches_lloyd_on_overlapping_blobs() {
        // Overlap forces real reassignments across iterations.
        let (data, w) = blobs(60, &[(0.0, 0.0), (1.2, 0.4), (0.5, 1.0)]);
        let init = init_from(&data, &[3, 70, 130]);
        let fast = kmeans_hamerly_from(&data, &w, init.clone(), 200);
        let slow = lloyd_from(&data, &w, init, 200);
        assert_eq!(fast.labels, slow.labels, "exactness under churn");
        assert!((fast.wcss - slow.wcss).abs() < 1e-9 * (1.0 + slow.wcss));
    }

    #[test]
    fn respects_weights() {
        let data = VectorSet::from_rows(&[vec![0.0], vec![1.0], vec![10.0]]);
        let w = vec![1.0, 1.0, 8.0];
        let init = VectorSet::from_rows(&[vec![0.5], vec![9.0]]);
        let r = kmeans_hamerly_from(&data, &w, init, 50);
        // The heavy point owns its centroid exactly.
        assert!((r.centroids.row(1)[0] - 10.0).abs() < 1e-9);
        assert!((r.centroids.row(0)[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn single_cluster_converges_to_weighted_mean() {
        let (data, w) = blobs(50, &[(5.0, 5.0)]);
        let init = VectorSet::from_rows(&[vec![0.0, 0.0]]);
        let r = kmeans_hamerly_from(&data, &w, init, 50);
        let mean_x: f64 = data.rows().map(|v| v[0]).sum::<f64>() / data.len() as f64;
        assert!((r.centroids.row(0)[0] - mean_x).abs() < 1e-9);
        assert_eq!(r.labels, vec![0; data.len()]);
    }
}
