//! Property-based tests of the SimPoint engine's invariants.

// Index-heavy math assertions read better with explicit indices.
#![allow(clippy::needless_range_loop)]

use cbsp_simpoint::vector::{distance_l1, distance_sq, normalize, normalized, KERNEL_LANES};
use cbsp_simpoint::{
    analyze, bic, kmeans, kmeans_hamerly_from, EstimatorConfig, Projection, RepresentativePolicy,
    SimPointConfig, VectorSet,
};
use proptest::prelude::*;
use std::collections::HashMap;

fn vectors_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    // n vectors of shared dimension d, strictly positive mass.
    (2usize..40, 2usize..24).prop_flat_map(|(n, d)| {
        prop::collection::vec(
            prop::collection::vec(0.0f64..100.0, d)
                .prop_filter("nonzero mass", |v| v.iter().sum::<f64>() > 1.0),
            n,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn normalization_produces_unit_mass(vs in vectors_strategy()) {
        for v in &vs {
            let n = normalized(v);
            prop_assert!((n.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            // Order is preserved.
            for (a, b) in v.iter().zip(&n) {
                prop_assert!((a > &0.0) == (b > &0.0));
            }
        }
    }

    #[test]
    fn projection_preserves_linearity_and_determinism(
        v in prop::collection::vec(0.0f64..10.0, 30),
        scale in 0.1f64..5.0,
        seed in any::<u64>(),
    ) {
        let p = Projection::new(seed, 8);
        let pv = p.project(&v);
        prop_assert_eq!(pv.clone(), p.project(&v));
        let scaled: Vec<f64> = v.iter().map(|x| x * scale).collect();
        let ps = p.project(&scaled);
        for (a, b) in pv.iter().zip(&ps) {
            prop_assert!((a * scale - b).abs() < 1e-6 * (1.0 + a.abs() * scale));
        }
    }

    #[test]
    fn kmeans_output_is_well_formed(vs in vectors_strategy(), k in 1usize..6, seed in any::<u64>()) {
        let k = k.min(vs.len());
        let weights = vec![1.0; vs.len()];
        let data = VectorSet::from_rows(&vs);
        let r = kmeans(&data, &weights, k, seed, 50);
        prop_assert_eq!(r.labels.len(), vs.len());
        prop_assert_eq!(r.centroids.len(), k);
        for &l in &r.labels {
            prop_assert!((l as usize) < k);
        }
        prop_assert!(r.wcss >= 0.0 && r.wcss.is_finite());
        // Every vector's own centroid is at least as close as the
        // assigned distance sum implies (assignment optimality).
        for (i, v) in vs.iter().enumerate() {
            let own = distance_sq(v, r.centroids.row(r.labels[i] as usize));
            for c in r.centroids.rows() {
                prop_assert!(own <= distance_sq(v, c) + 1e-9);
            }
        }
    }

    #[test]
    fn kmeans_with_k_equals_n_is_exact(vs in vectors_strategy()) {
        // Distinct points each get their own cluster => zero objective.
        let mut unique = vs.clone();
        unique.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        unique.dedup();
        let weights = vec![1.0; unique.len()];
        let data = VectorSet::from_rows(&unique);
        let r = kmeans(&data, &weights, unique.len(), 0, 100);
        prop_assert!(r.wcss < 1e-9, "wcss {}", r.wcss);
    }

    #[test]
    fn bic_is_finite_for_any_clustering(vs in vectors_strategy(), k in 1usize..6) {
        let k = k.min(vs.len());
        let weights = vec![1.0; vs.len()];
        let data = VectorSet::from_rows(&vs);
        let r = kmeans(&data, &weights, k, 1, 50);
        let score = bic(&data, &weights, &r);
        prop_assert!(score.is_finite());
    }

    #[test]
    fn analyze_invariants_hold(vs in vectors_strategy(), instr_base in 1u64..1_000_000) {
        let instrs: Vec<u64> = (0..vs.len()).map(|i| instr_base + i as u64).collect();
        let r = analyze(&vs, &instrs, &SimPointConfig::default());
        // Weights sum to 1 and every representative carries its own label.
        prop_assert!((r.total_weight() - 1.0).abs() < 1e-9);
        prop_assert_eq!(r.labels.len(), vs.len());
        for pt in &r.points {
            prop_assert_eq!(r.labels[pt.interval], pt.phase);
            prop_assert!(pt.weight > 0.0 && pt.weight <= 1.0 + 1e-12);
        }
        // Points are sorted by descending weight.
        for w in r.points.windows(2) {
            prop_assert!(w[0].weight >= w[1].weight);
        }
        // k respects the configured maximum.
        prop_assert!(r.k >= 1 && r.k <= 10);
    }

    #[test]
    fn weights_equal_phase_instruction_shares(vs in vectors_strategy()) {
        let instrs: Vec<u64> = (0..vs.len()).map(|i| 1_000 + (i as u64 % 7) * 100).collect();
        let total: u64 = instrs.iter().sum();
        let r = analyze(&vs, &instrs, &SimPointConfig::default());
        for pt in &r.points {
            let share: u64 = r
                .labels
                .iter()
                .enumerate()
                .filter(|(_, &l)| l == pt.phase)
                .map(|(i, _)| instrs[i])
                .sum();
            prop_assert!((pt.weight - share as f64 / total as f64).abs() < 1e-9);
        }
    }

    /// Hamerly's accelerated k-means is exact: from any start it reaches
    /// an assignment that is a k-means fixed point (every vector is
    /// assigned to its nearest centroid, and every centroid is its
    /// members' weighted mean).
    #[test]
    fn hamerly_reaches_a_fixed_point(vs in vectors_strategy(), k in 1usize..5, seed in 0usize..1000) {
        let k = k.min(vs.len());
        let weights = vec![1.0; vs.len()];
        let data = VectorSet::from_rows(&vs);
        let init = {
            let mut init = VectorSet::with_capacity(data.dims(), k);
            for i in 0..k {
                init.push(data.row((seed + i * 7) % vs.len()));
            }
            init
        };
        let r = kmeans_hamerly_from(&data, &weights, init, 200);
        // Assignment optimality.
        for (i, v) in vs.iter().enumerate() {
            let own = distance_sq(v, r.centroids.row(r.labels[i] as usize));
            for c in r.centroids.rows() {
                prop_assert!(own <= distance_sq(v, c) + 1e-9);
            }
        }
        // Centroid optimality (nonempty clusters only).
        for c in 0..k {
            let members: Vec<usize> = (0..vs.len()).filter(|&i| r.labels[i] as usize == c).collect();
            if members.is_empty() {
                continue;
            }
            let dims = vs[0].len();
            for d in 0..dims {
                let mean: f64 = members.iter().map(|&i| vs[i][d]).sum::<f64>() / members.len() as f64;
                prop_assert!((mean - r.centroids.row(c)[d]).abs() < 1e-6,
                    "cluster {c} dim {d}: mean {mean} vs centroid {}", r.centroids.row(c)[d]);
            }
        }
    }

    /// The clustering engine's parallelism is invisible in the output:
    /// the full analysis at 8 threads equals the 1-thread analysis
    /// exactly, for arbitrary workloads and seeds.
    #[test]
    fn analysis_is_thread_count_invariant(
        vs in vectors_strategy(),
        instr_base in 1u64..1_000_000,
        seed in any::<u64>(),
    ) {
        let instrs: Vec<u64> = (0..vs.len()).map(|i| instr_base + i as u64).collect();
        let config = SimPointConfig { seed, threads: 1, ..SimPointConfig::default() };
        let serial = analyze(&vs, &instrs, &config);
        let pooled = analyze(&vs, &instrs, &SimPointConfig { threads: 8, ..config });
        prop_assert_eq!(&serial, &pooled);
        for ((_, a), (_, b)) in serial.bic_scores.iter().zip(&pooled.bic_scores) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The unrolled kernels are *bit-identical* to straightforward
    /// mirrors with the same lane layout and reduction order: the
    /// unrolling is pure loop restructuring, not a numerical change the
    /// compiler (or a future refactor) is free to reassociate.
    #[test]
    fn distance_kernels_are_bit_identical_to_lane_mirrors(
        pairs in (1usize..70).prop_flat_map(|d| (
            prop::collection::vec(-1e6f64..1e6, d),
            prop::collection::vec(-1e6f64..1e6, d),
        )),
    ) {
        fn mirror<F: Fn(f64, f64) -> f64>(a: &[f64], b: &[f64], term: F) -> f64 {
            let main = a.len() & !(KERNEL_LANES - 1);
            let mut acc = [0.0f64; KERNEL_LANES];
            for i in (0..main).step_by(KERNEL_LANES) {
                for lane in 0..KERNEL_LANES {
                    acc[lane] += term(a[i + lane], b[i + lane]);
                }
            }
            let mut tail = 0.0;
            for i in main..a.len() {
                tail += term(a[i], b[i]);
            }
            ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
        }
        let (a, b) = pairs;
        let sq = mirror(&a, &b, |x, y| (x - y) * (x - y));
        prop_assert_eq!(distance_sq(&a, &b).to_bits(), sq.to_bits());
        let l1 = mirror(&a, &b, |x, y| (x - y).abs());
        prop_assert_eq!(distance_l1(&a, &b).to_bits(), l1.to_bits());
    }

    /// Stratified selection under arbitrary (and degenerate) phase
    /// populations — the selector-level mirror of the k-means++
    /// degenerate-distribution audit in `kmeans::sample_index`:
    /// single-member phases, zero-variance phases, and `per_cluster`
    /// exceeding the phase size must all produce a deterministic,
    /// duplicate-free selection whose shares partition each phase.
    #[test]
    fn stratified_selection_survives_degenerate_phases(
        vs in vectors_strategy(),
        per_cluster in 1usize..6,
        seed in any::<u64>(),
    ) {
        let instrs: Vec<u64> = (0..vs.len()).map(|i| 1_000 + (i as u64 % 5) * 500).collect();
        let config = SimPointConfig {
            seed,
            representative: RepresentativePolicy::Stratified { per_cluster },
            ..SimPointConfig::default()
        };
        let r = analyze(&vs, &instrs, &config);
        prop_assert_eq!(&r, &analyze(&vs, &instrs, &config));
        prop_assert!((r.total_weight() - 1.0).abs() < 1e-9);
        let mut per_phase: HashMap<u32, Vec<usize>> = HashMap::new();
        for pt in &r.points {
            prop_assert_eq!(r.labels[pt.interval], pt.phase);
            prop_assert!(pt.share > 0.0 && pt.share <= 1.0 + 1e-12);
            per_phase.entry(pt.phase).or_default().push(pt.interval);
        }
        for (phase, mut intervals) in per_phase {
            let size = r.labels.iter().filter(|&&l| l == phase).count();
            // Never more representatives than members or than asked for.
            prop_assert!(intervals.len() <= per_cluster.min(size));
            intervals.sort_unstable();
            intervals.dedup();
            let reps = r.points.iter().filter(|p| p.phase == phase).count();
            prop_assert_eq!(intervals.len(), reps, "no duplicate representatives");
            let share: f64 = r
                .points
                .iter()
                .filter(|p| p.phase == phase)
                .map(|p| p.share)
                .sum();
            prop_assert!((share - 1.0).abs() < 1e-9, "phase {} share {}", phase, share);
        }
    }

    /// Every estimator lane's selection, not just the default, is
    /// invisible to parallelism: 8-thread analysis equals 1-thread
    /// analysis exactly under each selection policy.
    #[test]
    fn every_selector_is_thread_count_invariant(
        vs in vectors_strategy(),
        seed in any::<u64>(),
        lane in 0usize..EstimatorConfig::KNOWN_TAGS.len(),
    ) {
        let estimator = EstimatorConfig::parse(EstimatorConfig::KNOWN_TAGS[lane])
            .expect("known tag");
        let instrs: Vec<u64> = (0..vs.len()).map(|i| 1_000 + i as u64).collect();
        let config = SimPointConfig {
            seed,
            threads: 1,
            representative: estimator.selector,
            ..SimPointConfig::default()
        };
        let serial = analyze(&vs, &instrs, &config);
        let pooled = analyze(&vs, &instrs, &SimPointConfig { threads: 8, ..config });
        prop_assert_eq!(&serial, &pooled);
    }

    #[test]
    fn normalize_is_idempotent(v in prop::collection::vec(0.0f64..50.0, 1..30)) {
        prop_assume!(v.iter().sum::<f64>() > 0.0);
        let mut once = v.clone();
        normalize(&mut once);
        let mut twice = once.clone();
        normalize(&mut twice);
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }
}
