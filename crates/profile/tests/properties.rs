//! Property-based tests of the profiling primitives, driven by raw
//! synthetic event streams (no program needed).

use cbsp_profile::{
    parse_bb, write_bb, BbvBuilder, FliProfiler, Interval, MarkerCounts, MarkerRef,
};
use cbsp_program::{BinLoopId, BinProcId, BlockId, Marker, TraceSink};
use proptest::prelude::*;

fn block_stream() -> impl Strategy<Value = Vec<(u32, u64)>> {
    prop::collection::vec((0u32..16, 1u64..500), 1..300)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// FLI slicing partitions any block stream exactly, every complete
    /// interval meets the target, and no interval overshoots by more
    /// than one block.
    #[test]
    fn fli_partitions_any_stream(stream in block_stream(), target in 1u64..5_000) {
        let mut profiler = FliProfiler::new(16, target);
        let mut total = 0u64;
        let mut max_block = 0u64;
        for &(b, instrs) in &stream {
            profiler.on_block(BlockId(b), instrs);
            total += instrs;
            max_block = max_block.max(instrs);
        }
        let intervals = profiler.finish();
        prop_assert_eq!(intervals.iter().map(|i| i.instrs).sum::<u64>(), total);
        if let Some((last, complete)) = intervals.split_last() {
            for iv in complete {
                prop_assert!(iv.instrs >= target);
                prop_assert!(iv.instrs < target + max_block);
            }
            prop_assert!(last.instrs > 0);
        }
        // BBV mass equals instructions, interval by interval.
        for iv in &intervals {
            let mass: f64 = iv.bbv.iter().sum();
            prop_assert!((mass - iv.instrs as f64).abs() < 1e-6);
        }
    }

    /// The BBV accumulator distributes mass to exactly the observed
    /// blocks.
    #[test]
    fn bbv_mass_lands_on_observed_blocks(stream in block_stream()) {
        let mut b = BbvBuilder::new(16);
        let mut expect = vec![0.0f64; 16];
        for &(blk, instrs) in &stream {
            b.observe(BlockId(blk), instrs);
            expect[blk as usize] += instrs as f64;
        }
        let (bbv, _) = b.take_interval();
        for (got, want) in bbv.iter().zip(&expect) {
            prop_assert!((got - want).abs() < 1e-9);
        }
    }

    /// Marker counts are cumulative, 1-based, and independent per
    /// marker kind and index.
    #[test]
    fn marker_counts_are_exact(events in prop::collection::vec((0u8..3, 0u32..4), 1..200)) {
        let mut counts = MarkerCounts::new(4, 4);
        let mut expect = std::collections::BTreeMap::new();
        for &(kind, idx) in &events {
            let marker = match kind {
                0 => Marker::ProcEntry(BinProcId(idx)),
                1 => Marker::LoopEntry(BinLoopId(idx)),
                _ => Marker::LoopBack(BinLoopId(idx)),
            };
            let n = counts.observe(marker);
            let e = expect.entry((kind, idx)).or_insert(0u64);
            *e += 1;
            prop_assert_eq!(n, *e, "cumulative count");
        }
        for (&(kind, idx), &n) in &expect {
            let r = match kind {
                0 => MarkerRef::Proc(idx),
                1 => MarkerRef::LoopEntry(idx),
                _ => MarkerRef::LoopBack(idx),
            };
            prop_assert_eq!(counts.count(r), n);
        }
    }

    /// Arbitrary integer-valued profiles survive the .bb text format.
    #[test]
    fn bb_format_round_trips(rows in prop::collection::vec(
        prop::collection::vec(0u32..10_000, 1..12), 1..20)) {
        let dims = rows.iter().map(Vec::len).max().unwrap_or(1);
        let intervals: Vec<Interval> = rows
            .iter()
            .map(|r| {
                let mut bbv = vec![0.0; dims];
                for (i, &v) in r.iter().enumerate() {
                    bbv[i] = f64::from(v);
                }
                Interval {
                    bbv,
                    instrs: r.iter().map(|&v| u64::from(v)).sum(),
                }
            })
            .collect();
        prop_assume!(intervals.iter().any(|i| i.instrs > 0));
        let text = write_bb(&intervals);
        let back = parse_bb(&text).expect("parses");
        prop_assert_eq!(back.len(), intervals.len());
        for (a, b) in back.iter().zip(&intervals) {
            prop_assert_eq!(a.instrs, b.instrs);
            for (i, &v) in a.bbv.iter().enumerate() {
                prop_assert_eq!(v, b.bbv[i]);
            }
        }
    }

    /// MarkerRef round-trips through the executor marker type.
    #[test]
    fn marker_refs_round_trip(kind in 0u8..3, idx in 0u32..1_000_000) {
        let r = match kind {
            0 => MarkerRef::Proc(idx),
            1 => MarkerRef::LoopEntry(idx),
            _ => MarkerRef::LoopBack(idx),
        };
        prop_assert_eq!(MarkerRef::from(r.to_marker()), r);
    }
}
