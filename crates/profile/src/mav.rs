//! Memory Access Vector (MAV) accumulation.
//!
//! A MAV is a per-interval histogram of memory-access locality (arxiv
//! 2506.02344): accesses are bucketed by cache-line address modulo a
//! small fixed bucket count, reads and writes separately, so intervals
//! that execute the same basic blocks against different working sets
//! produce different vectors. Unlike BBVs the dimensionality is fixed
//! — [`MavBuilder::DIMS`] — and independent of the binary, but MAVs
//! still ride alongside BBVs per interval and are only clustered
//! *within* one binary.

use serde::{Deserialize, Serialize};

/// Cache-line address buckets per access direction.
const BUCKETS: usize = 16;

/// Bytes per cache line (must match the simulator's line size).
const LINE_SHIFT: u32 = 6;

/// Accumulates one interval's memory-access vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MavBuilder {
    current: Vec<f64>,
}

impl MavBuilder {
    /// MAV dimensionality: read buckets followed by write buckets.
    pub const DIMS: usize = 2 * BUCKETS;

    /// Creates an empty accumulator.
    pub fn new() -> Self {
        MavBuilder {
            current: vec![0.0; Self::DIMS],
        }
    }

    /// Records one memory access to byte address `addr`.
    #[inline]
    pub fn observe(&mut self, addr: u64, is_write: bool) {
        let bucket = ((addr >> LINE_SHIFT) % BUCKETS as u64) as usize;
        let offset = if is_write { BUCKETS } else { 0 };
        self.current[offset + bucket] += 1.0;
    }

    /// Closes the current interval, returning its (unnormalized) MAV,
    /// and resets the accumulator.
    pub fn take_interval(&mut self) -> Vec<f64> {
        std::mem::replace(&mut self.current, vec![0.0; Self::DIMS])
    }
}

impl Default for MavBuilder {
    fn default() -> Self {
        MavBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_and_writes_land_in_separate_buckets() {
        let mut m = MavBuilder::new();
        m.observe(0, false);
        m.observe(64, false);
        m.observe(0, true);
        let v = m.take_interval();
        assert_eq!(v.len(), MavBuilder::DIMS);
        assert_eq!(v[0], 1.0, "read of line 0");
        assert_eq!(v[1], 1.0, "read of line 1");
        assert_eq!(v[BUCKETS], 1.0, "write of line 0");
        assert_eq!(v.iter().sum::<f64>(), 3.0);
    }

    #[test]
    fn same_line_accesses_share_a_bucket() {
        let mut m = MavBuilder::new();
        m.observe(128, false);
        m.observe(129, false);
        m.observe(191, false);
        let v = m.take_interval();
        assert_eq!(v[2], 3.0, "bytes 128..192 are one line");
    }

    #[test]
    fn take_interval_resets() {
        let mut m = MavBuilder::new();
        m.observe(4096, true);
        let _ = m.take_interval();
        let v = m.take_interval();
        assert!(v.iter().all(|&x| x == 0.0));
    }
}
