//! The call-and-branch profile of paper §3.2.1.
//!
//! For each binary and input, records how many times every procedure
//! entry point, loop entry point, and loop-body (back) branch executed.
//! Together with symbol names and debug line numbers, this is all the
//! observable information the cross-binary matcher may use.

use cbsp_program::{run, BinProcId, Binary, Input, LStmt, NullSink};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Dynamic execution counts of every marker in one binary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallLoopProfile {
    /// Entry count per procedure, indexed by `BinProcId`.
    pub proc_entries: Vec<u64>,
    /// Entry count per loop (times entered, regardless of iterations),
    /// indexed by `BinLoopId`.
    pub loop_entries: Vec<u64>,
    /// Back-branch execution count per loop (total iterations, or
    /// iteration groups in unrolled loops), indexed by `BinLoopId`.
    pub loop_backs: Vec<u64>,
    /// Total committed instructions of the profiled run.
    pub instructions: u64,
}

impl CallLoopProfile {
    /// Profiles `binary` on `input` (a full functional run, no timing).
    pub fn collect(binary: &Binary, input: &Input) -> Self {
        let s = run(binary, input, &mut NullSink);
        CallLoopProfile {
            proc_entries: s.proc_entries,
            loop_entries: s.loop_entries,
            loop_backs: s.loop_backs,
            instructions: s.instructions,
        }
    }
}

/// The static call graph of a binary: for each procedure, the set of
/// procedures whose code contains a call to it.
///
/// Used by inline recovery (paper §3.3): when a procedure symbol is
/// missing from an optimized binary, its loops are searched for inside
/// the procedures that call it in the binaries where it still exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallGraph {
    /// `callers[p]` = procedures containing a call to procedure `p`.
    pub callers: Vec<BTreeSet<BinProcId>>,
    /// `callees[p]` = procedures that procedure `p` calls.
    pub callees: Vec<BTreeSet<BinProcId>>,
}

impl CallGraph {
    /// Extracts the static call graph from a binary's lowered code.
    pub fn of(binary: &Binary) -> Self {
        let n = binary.procs.len();
        let mut callers = vec![BTreeSet::new(); n];
        let mut callees = vec![BTreeSet::new(); n];

        fn walk(
            stmts: &[LStmt],
            from: BinProcId,
            callers: &mut [BTreeSet<BinProcId>],
            callees: &mut [BTreeSet<BinProcId>],
        ) {
            for s in stmts {
                match s {
                    LStmt::Call { callee, .. } => {
                        callers[callee.index()].insert(from);
                        callees[from.index()].insert(*callee);
                    }
                    LStmt::Loop(l) => walk(&l.body, from, callers, callees),
                    LStmt::Inlined { body, .. } => walk(body, from, callers, callees),
                    LStmt::If {
                        then_body,
                        else_body,
                        ..
                    } => {
                        walk(then_body, from, callers, callees);
                        walk(else_body, from, callers, callees);
                    }
                    LStmt::Block(_) => {}
                }
            }
        }
        for (i, body) in binary.code.iter().enumerate() {
            walk(body, BinProcId(i as u32), &mut callers, &mut callees);
        }
        CallGraph { callers, callees }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbsp_program::{compile, CompileTarget, ProgramBuilder, Scale};

    fn program() -> cbsp_program::SourceProgram {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_fixed(10, |body| {
                body.call("middle");
            });
        });
        b.proc("middle", |p| {
            p.loop_random(2, 5, |body| {
                body.call("leaf");
            });
        });
        b.proc("leaf", |p| p.work(5));
        b.finish()
    }

    #[test]
    fn profile_counts_match_structure() {
        let bin = compile(&program(), CompileTarget::W32_O0);
        let prof = CallLoopProfile::collect(&bin, &Input::new("t", 3, Scale::Test));
        assert_eq!(prof.proc_entries[0], 1, "main once");
        assert_eq!(prof.proc_entries[1], 10, "middle per outer iteration");
        let leaf_calls = prof.proc_entries[2];
        assert_eq!(
            leaf_calls, prof.loop_backs[1],
            "leaf called once per middle-loop iteration"
        );
        assert_eq!(prof.loop_entries[1], 10);
    }

    #[test]
    fn call_graph_edges() {
        let bin = compile(&program(), CompileTarget::W32_O2);
        let cg = CallGraph::of(&bin);
        let main = bin.proc_by_name("main").expect("main exists");
        let middle = bin.proc_by_name("middle").expect("middle exists");
        let leaf = bin.proc_by_name("leaf").expect("leaf exists");
        assert!(cg.callers[middle.index()].contains(&main));
        assert!(cg.callers[leaf.index()].contains(&middle));
        assert!(cg.callees[main.index()].contains(&middle));
        assert!(cg.callers[main.index()].is_empty());
    }

    #[test]
    fn call_graph_sees_through_inlined_bodies() {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| p.call("wrapper"));
        b.inline_proc("wrapper", |p| p.call("worker"));
        b.proc("worker", |p| p.work(1));
        let bin = compile(&b.finish(), CompileTarget::W32_O2);
        let cg = CallGraph::of(&bin);
        let main = bin.proc_by_name("main").expect("main");
        let worker = bin.proc_by_name("worker").expect("worker");
        // wrapper is gone; the call to worker now originates from main.
        assert!(cg.callers[worker.index()].contains(&main));
    }
}
