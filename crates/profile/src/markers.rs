//! Marker execution coordinates.
//!
//! A *marker* is an instruction the instrumentation can observe every
//! time it executes: a procedure entry point, a loop entry point, or a
//! loop-back branch. A `(marker, execution count)` pair — an
//! [`ExecPoint`] — names one exact moment of a binary's execution
//! (paper §3.2.3: "Each (marker ID, execution count) pair uniquely
//! identifies a specific point in execution").

use cbsp_program::{BinLoopId, BinProcId, Marker, TraceSink};
use serde::{Deserialize, Serialize};

/// A serializable reference to a marker within one binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MarkerRef {
    /// Procedure entry point.
    Proc(u32),
    /// Loop entry point.
    LoopEntry(u32),
    /// Loop-back (loop body) branch.
    LoopBack(u32),
}

impl MarkerRef {
    /// Converts to the executor's marker type.
    pub fn to_marker(self) -> Marker {
        match self {
            MarkerRef::Proc(i) => Marker::ProcEntry(BinProcId(i)),
            MarkerRef::LoopEntry(i) => Marker::LoopEntry(BinLoopId(i)),
            MarkerRef::LoopBack(i) => Marker::LoopBack(BinLoopId(i)),
        }
    }
}

impl From<Marker> for MarkerRef {
    fn from(m: Marker) -> Self {
        match m {
            Marker::ProcEntry(p) => MarkerRef::Proc(p.0),
            Marker::LoopEntry(l) => MarkerRef::LoopEntry(l.0),
            Marker::LoopBack(l) => MarkerRef::LoopBack(l.0),
        }
    }
}

impl std::fmt::Display for MarkerRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MarkerRef::Proc(i) => write!(f, "proc#{i}"),
            MarkerRef::LoopEntry(i) => write!(f, "loopentry#{i}"),
            MarkerRef::LoopBack(i) => write!(f, "loopback#{i}"),
        }
    }
}

/// A specific point in one binary's execution: the `count`-th execution
/// (1-based) of `marker`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ExecPoint {
    /// Which marker.
    pub marker: MarkerRef,
    /// Which execution of it, starting at 1.
    pub count: u64,
}

impl std::fmt::Display for ExecPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.marker, self.count)
    }
}

/// Running per-marker execution counts for one binary.
///
/// Shared by every sink that needs to know "how many times has this
/// marker fired so far" (VLI construction, region extraction, weight
/// recomputation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkerCounts {
    procs: Vec<u64>,
    loop_entries: Vec<u64>,
    loop_backs: Vec<u64>,
}

impl MarkerCounts {
    /// Creates zeroed counts for a binary with `nprocs` procedures and
    /// `nloops` loops.
    pub fn new(nprocs: usize, nloops: usize) -> Self {
        MarkerCounts {
            procs: vec![0; nprocs],
            loop_entries: vec![0; nloops],
            loop_backs: vec![0; nloops],
        }
    }

    /// Creates zeroed counts sized for `binary`.
    pub fn for_binary(binary: &cbsp_program::Binary) -> Self {
        Self::new(binary.procs.len(), binary.loops.len())
    }

    /// Records one execution of `marker`, returning its new (1-based)
    /// cumulative count.
    #[inline]
    pub fn observe(&mut self, marker: Marker) -> u64 {
        let slot = match marker {
            Marker::ProcEntry(p) => &mut self.procs[p.index()],
            Marker::LoopEntry(l) => &mut self.loop_entries[l.index()],
            Marker::LoopBack(l) => &mut self.loop_backs[l.index()],
        };
        *slot += 1;
        *slot
    }

    /// Current count of `marker`.
    pub fn count(&self, marker: MarkerRef) -> u64 {
        match marker {
            MarkerRef::Proc(i) => self.procs[i as usize],
            MarkerRef::LoopEntry(i) => self.loop_entries[i as usize],
            MarkerRef::LoopBack(i) => self.loop_backs[i as usize],
        }
    }
}

impl TraceSink for MarkerCounts {
    #[inline]
    fn on_block(&mut self, _: cbsp_program::BlockId, _: u64) {}

    #[inline]
    fn on_marker(&mut self, marker: Marker) {
        self.observe(marker);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_ref_round_trips() {
        for m in [
            Marker::ProcEntry(BinProcId(3)),
            Marker::LoopEntry(BinLoopId(5)),
            Marker::LoopBack(BinLoopId(0)),
        ] {
            assert_eq!(MarkerRef::from(m).to_marker(), m);
        }
    }

    #[test]
    fn counts_are_one_based_and_cumulative() {
        let mut c = MarkerCounts::new(2, 2);
        let m = Marker::LoopBack(BinLoopId(1));
        assert_eq!(c.observe(m), 1);
        assert_eq!(c.observe(m), 2);
        assert_eq!(c.count(MarkerRef::LoopBack(1)), 2);
        assert_eq!(c.count(MarkerRef::LoopBack(0)), 0);
        assert_eq!(c.count(MarkerRef::Proc(0)), 0);
    }

    #[test]
    fn display_formats() {
        let p = ExecPoint {
            marker: MarkerRef::Proc(7),
            count: 42,
        };
        assert_eq!(p.to_string(), "proc#7@42");
    }
}
