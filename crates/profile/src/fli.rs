//! Fixed Length Interval (FLI) profiling — the classic SimPoint 3.0
//! slicing (paper §2.1): execution is cut into contiguous intervals of
//! (at least) `target` committed instructions, at basic-block
//! granularity.

use crate::bbv::{BbvBuilder, Interval};
use cbsp_program::{Binary, BlockId, Input, TraceSink};

/// Trace sink that slices execution into fixed-length intervals and
/// collects a BBV per interval.
#[derive(Debug)]
pub struct FliProfiler {
    target: u64,
    builder: BbvBuilder,
    intervals: Vec<Interval>,
}

impl FliProfiler {
    /// Creates a profiler for a binary with `dims` static blocks,
    /// cutting intervals every `target` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `target` is zero.
    pub fn new(dims: usize, target: u64) -> Self {
        assert!(target > 0, "interval target must be positive");
        FliProfiler {
            target,
            builder: BbvBuilder::new(dims),
            intervals: Vec::new(),
        }
    }

    /// Finishes profiling, returning all intervals. A final partial
    /// interval is kept (it still represents real execution and carries
    /// weight proportional to its instruction count).
    pub fn finish(mut self) -> Vec<Interval> {
        if self.builder.instrs() > 0 {
            let (bbv, instrs) = self.builder.take_interval();
            self.intervals.push(Interval { bbv, instrs });
        }
        self.intervals
    }
}

impl TraceSink for FliProfiler {
    #[inline]
    fn on_block(&mut self, block: BlockId, instrs: u64) {
        self.builder.observe(block, instrs);
        if self.builder.instrs() >= self.target {
            let (bbv, instrs) = self.builder.take_interval();
            self.intervals.push(Interval { bbv, instrs });
        }
    }
}

/// Profiles `binary` on `input` with fixed-length intervals of
/// `target` instructions. Convenience wrapper over [`FliProfiler`].
pub fn profile_fli(binary: &Binary, input: &Input, target: u64) -> Vec<Interval> {
    let mut sink = FliProfiler::new(binary.block_count(), target);
    let summary = cbsp_program::run(binary, input, &mut sink);
    let intervals = sink.finish();
    debug_assert_eq!(
        intervals.iter().map(|i| i.instrs).sum::<u64>(),
        summary.instructions,
        "intervals must partition the execution"
    );
    intervals
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbsp_program::{compile, CompileTarget, ProgramBuilder, Scale};

    fn tiny_binary() -> Binary {
        let mut b = ProgramBuilder::new("t");
        let a = b.array_f64("a", 64);
        b.proc("main", |p| {
            p.loop_fixed(200, |body| {
                body.compute(50, |k| {
                    k.seq(a, 4);
                });
            });
        });
        compile(&b.finish(), CompileTarget::W32_O2)
    }

    #[test]
    fn intervals_partition_the_run() {
        let bin = tiny_binary();
        let input = Input::new("t", 1, Scale::Test);
        let intervals = profile_fli(&bin, &input, 1000);
        assert!(intervals.len() > 3);
        let total: u64 = intervals.iter().map(|i| i.instrs).sum();
        let summary = cbsp_program::run(&bin, &input, &mut cbsp_program::NullSink);
        assert_eq!(total, summary.instructions);
        // Every complete interval is at least the target.
        for i in &intervals[..intervals.len() - 1] {
            assert!(i.instrs >= 1000);
            // ... but never overshoots by more than one block.
            assert!(i.instrs < 1000 + 200);
        }
    }

    #[test]
    fn bbv_mass_equals_instruction_count() {
        let bin = tiny_binary();
        let input = Input::new("t", 1, Scale::Test);
        for iv in profile_fli(&bin, &input, 500) {
            let mass: f64 = iv.bbv.iter().sum();
            assert!((mass - iv.instrs as f64).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_target_rejected() {
        let _ = FliProfiler::new(4, 0);
    }
}
