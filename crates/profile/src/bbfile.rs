//! The SimPoint `.bb` frequency-vector text format.
//!
//! The original SimPoint tool chain exchanges basic-block vectors as
//! text files with one interval per line:
//!
//! ```text
//! T:45:1024 :189:99343 :11:78573
//! T:11:1000 :321:148
//! ```
//!
//! Each line starts with `T`, followed by `:block:count` pairs for every
//! basic block executed in the interval, where `block` is a **1-based**
//! block id and `count` is the instruction-weighted execution count.
//! This module reads and writes that format so interval profiles can be
//! exchanged with the original SimPoint 3.0 release (and inspected with
//! a text editor).

use crate::bbv::Interval;
use std::fmt::Write as _;

/// Serializes intervals to `.bb` text.
///
/// Zero entries are omitted (the format is sparse); counts are written
/// as rounded integers, the convention of the original tools.
pub fn write_bb(intervals: &[Interval]) -> String {
    let mut out = String::new();
    for iv in intervals {
        out.push('T');
        for (block, &count) in iv.bbv.iter().enumerate() {
            if count > 0.0 {
                let _ = write!(out, ":{}:{} ", block + 1, count.round() as u64);
            }
        }
        out.push('\n');
    }
    out
}

/// Error produced when parsing a `.bb` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBbError {
    /// 1-based line of the problem.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseBbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseBbError {}

/// Parses `.bb` text into intervals.
///
/// The dimensionality is the largest block id seen (blocks are 1-based
/// in the format, 0-based in the returned vectors). Interval
/// instruction counts are the sum of the entries, which matches how the
/// profilers build them (instruction-weighted BBVs).
///
/// # Errors
///
/// Returns a [`ParseBbError`] naming the offending line for any
/// malformed input.
pub fn parse_bb(text: &str) -> Result<Vec<Interval>, ParseBbError> {
    let mut rows: Vec<Vec<(usize, f64)>> = Vec::new();
    let mut max_block = 0usize;

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| ParseBbError {
            line: lineno + 1,
            message,
        };
        let Some(rest) = line.strip_prefix('T') else {
            return Err(err(format!(
                "expected line to start with 'T', got {line:?}"
            )));
        };
        let mut entries = Vec::new();
        for token in rest.split_whitespace() {
            let token = token.strip_prefix(':').unwrap_or(token);
            let mut parts = token.splitn(2, ':');
            let block: usize = parts
                .next()
                .filter(|s| !s.is_empty())
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(format!("bad block id in {token:?}")))?;
            let count: f64 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(format!("bad count in {token:?}")))?;
            if block == 0 {
                return Err(err("block ids are 1-based; got 0".to_string()));
            }
            if count < 0.0 || !count.is_finite() {
                return Err(err(format!("bad count {count}")));
            }
            max_block = max_block.max(block);
            entries.push((block - 1, count));
        }
        rows.push(entries);
    }

    Ok(rows
        .into_iter()
        .map(|entries| {
            let mut bbv = vec![0.0; max_block];
            let mut instrs = 0.0;
            for (block, count) in entries {
                bbv[block] += count;
                instrs += count;
            }
            Interval {
                bbv,
                instrs: instrs.round() as u64,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_profile() {
        let intervals = vec![
            Interval {
                bbv: vec![0.0, 1024.0, 0.0, 99343.0],
                instrs: 100_367,
            },
            Interval {
                bbv: vec![1000.0, 0.0, 148.0, 0.0],
                instrs: 1_148,
            },
        ];
        let text = write_bb(&intervals);
        let back = parse_bb(&text).expect("parses");
        assert_eq!(back, intervals);
    }

    #[test]
    fn parses_the_documented_example() {
        let text = "T:45:1024 :189:99343 :11:78573\nT:11:1000 :321:148 \n";
        let ivs = parse_bb(text).expect("parses");
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[0].bbv.len(), 321, "dim = max block id");
        assert_eq!(ivs[0].bbv[44], 1024.0);
        assert_eq!(ivs[0].bbv[188], 99343.0);
        assert_eq!(ivs[0].instrs, 1024 + 99343 + 78573);
        assert_eq!(ivs[1].bbv[320], 148.0);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# a comment\n\nT:1:5 \n";
        let ivs = parse_bb(text).expect("parses");
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].instrs, 5);
    }

    #[test]
    fn reports_malformed_lines() {
        for bad in ["X:1:5", "T:0:5", "T:1:", "T:abc:3", "T:1:-4"] {
            let e = parse_bb(bad).expect_err(bad);
            assert_eq!(e.line, 1, "{bad}");
        }
        let e = parse_bb("T:1:1 \nT:oops:2 ").expect_err("second line bad");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn real_profile_round_trips_through_text() {
        use cbsp_program::{compile, workloads, CompileTarget, Input, Scale};
        let prog = workloads::by_name("gzip")
            .expect("in suite")
            .build(Scale::Test);
        let bin = compile(&prog, CompileTarget::W32_O2);
        let intervals = crate::fli::profile_fli(&bin, &Input::test(), 20_000);
        let text = write_bb(&intervals);
        let back = parse_bb(&text).expect("parses");
        assert_eq!(back.len(), intervals.len());
        for (a, b) in back.iter().zip(&intervals) {
            assert_eq!(a.instrs, b.instrs);
            // Dimensions may be truncated to the last nonzero block.
            for (i, &v) in a.bbv.iter().enumerate() {
                assert_eq!(v, b.bbv[i]);
            }
        }
    }
}
