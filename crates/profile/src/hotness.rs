//! Per-procedure hotness profiling.
//!
//! Attributes committed instructions to the out-of-line procedure whose
//! code executed them (inlined code counts toward the procedure it was
//! inlined into — the same attribution a sampling profiler on the real
//! binary would report). Useful for sanity-checking workloads and for
//! the `cbsp hot` command.

use cbsp_program::{run, BinProcId, Binary, BlockId, Input, TraceSink};

/// Instruction attribution per procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcHotness {
    /// Instructions executed in each procedure's code, indexed by
    /// [`BinProcId`].
    pub instrs: Vec<u64>,
    /// Total committed instructions.
    pub total: u64,
}

impl ProcHotness {
    /// Profiles `binary` on `input`.
    pub fn collect(binary: &Binary, input: &Input) -> Self {
        struct Sink<'a> {
            block_proc: &'a [u32],
            instrs: Vec<u64>,
            total: u64,
        }
        impl TraceSink for Sink<'_> {
            #[inline]
            fn on_block(&mut self, block: BlockId, instrs: u64) {
                self.instrs[self.block_proc[block.index()] as usize] += instrs;
                self.total += instrs;
            }
        }
        let block_proc: Vec<u32> = binary.blocks.iter().map(|b| b.proc.0).collect();
        let mut sink = Sink {
            block_proc: &block_proc,
            instrs: vec![0; binary.procs.len()],
            total: 0,
        };
        run(binary, input, &mut sink);
        ProcHotness {
            instrs: sink.instrs,
            total: sink.total,
        }
    }

    /// Procedures sorted hottest-first as `(proc, instrs, fraction)`.
    pub fn ranking(&self) -> Vec<(BinProcId, u64, f64)> {
        let mut v: Vec<(BinProcId, u64, f64)> = self
            .instrs
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                (
                    BinProcId(i as u32),
                    n,
                    if self.total > 0 {
                        n as f64 / self.total as f64
                    } else {
                        0.0
                    },
                )
            })
            .collect();
        v.sort_by_key(|&(_, count, _)| std::cmp::Reverse(count));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbsp_program::{compile, CompileTarget, ProgramBuilder, Scale};

    #[test]
    fn attribution_follows_where_the_work_is() {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_fixed(10, |body| {
                body.call("hot");
                body.call("cold");
            });
        });
        b.proc("hot", |p| {
            p.loop_fixed(50, |body| body.work(100));
        });
        b.proc("cold", |p| p.work(5));
        let bin = compile(&b.finish(), CompileTarget::W32_O2);
        let input = Input::new("t", 1, Scale::Test);
        let h = ProcHotness::collect(&bin, &input);
        let ranking = h.ranking();
        let hottest = &bin.procs[ranking[0].0.index()].name;
        assert_eq!(hottest, "hot");
        assert!(ranking[0].2 > 0.9, "hot dominates: {}", ranking[0].2);
        let total: u64 = h.instrs.iter().sum();
        assert_eq!(total, h.total, "every instruction attributed");
    }

    #[test]
    fn inlined_code_counts_toward_the_caller() {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_fixed(20, |body| body.call("leaf"));
        });
        b.inline_proc("leaf", |p| {
            p.loop_fixed(10, |body| body.work(50));
        });
        let prog = b.finish();
        let o2 = compile(&prog, CompileTarget::W32_O2);
        let input = Input::new("t", 1, Scale::Test);
        let h = ProcHotness::collect(&o2, &input);
        // Only main exists; all instructions land there.
        assert_eq!(o2.procs.len(), 1);
        assert_eq!(h.instrs[0], h.total);
    }
}
