//! PinPoints-style region files.
//!
//! In the paper's tool chain, PinPoints ties everything together: it
//! carries the simulation regions SimPoint selected (with their weights
//! and phase ids) to the simulator (§4). This module is the
//! serializable equivalent: a [`PinPointsFile`] describes, for one
//! binary and input, where each simulation region starts and ends —
//! either by dynamic instruction offsets (per-binary FLI regions) or by
//! marker execution coordinates (mappable VLI regions).

use crate::markers::ExecPoint;
use serde::{Deserialize, Serialize};

/// One end of a simulation region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RegionBound {
    /// A dynamic instruction offset from the start of execution
    /// (fixed-length intervals; meaningful only for the binary the
    /// offsets were measured on).
    Instr(u64),
    /// A marker execution coordinate (mappable across binaries).
    Point(ExecPoint),
}

/// A simulation region: one representative interval of one phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimRegion {
    /// Phase (cluster) this region represents.
    pub phase: u32,
    /// Fraction of executed instructions its phase covers, in `[0, 1]`.
    pub weight: f64,
    /// Start of the region (inclusive).
    pub start: RegionBound,
    /// End of the region (exclusive).
    pub end: RegionBound,
}

/// A region file for one `(program, binary, input)` triple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PinPointsFile {
    /// Program (benchmark) name.
    pub program: String,
    /// Binary label, e.g. `"gcc-32o"`.
    pub binary: String,
    /// Input name.
    pub input: String,
    /// Interval size target used when slicing, in instructions.
    pub interval_target: u64,
    /// The simulation regions, one per phase.
    pub regions: Vec<SimRegion>,
}

impl PinPointsFile {
    /// Sum of region weights (should be ≈ 1 for a well-formed file).
    pub fn total_weight(&self) -> f64 {
        self.regions.iter().map(|r| r.weight).sum()
    }

    /// Validates structural invariants: weights in `[0, 1]` summing to
    /// ≈ 1, and unique phase ids.
    pub fn validate(&self) -> Result<(), String> {
        let mut phases = std::collections::BTreeSet::new();
        for r in &self.regions {
            if !(0.0..=1.0 + 1e-9).contains(&r.weight) {
                return Err(format!(
                    "region phase {} weight {} out of range",
                    r.phase, r.weight
                ));
            }
            if !phases.insert(r.phase) {
                return Err(format!("duplicate phase {}", r.phase));
            }
        }
        let total = self.total_weight();
        if self.regions.is_empty() || (total - 1.0).abs() > 1e-6 {
            return Err(format!("weights sum to {total}, expected 1"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markers::MarkerRef;

    fn file() -> PinPointsFile {
        PinPointsFile {
            program: "gcc".into(),
            binary: "gcc-32o".into(),
            input: "ref".into(),
            interval_target: 100_000,
            regions: vec![
                SimRegion {
                    phase: 0,
                    weight: 0.6,
                    start: RegionBound::Instr(0),
                    end: RegionBound::Instr(100_000),
                },
                SimRegion {
                    phase: 1,
                    weight: 0.4,
                    start: RegionBound::Point(ExecPoint {
                        marker: MarkerRef::LoopBack(3),
                        count: 17,
                    }),
                    end: RegionBound::Point(ExecPoint {
                        marker: MarkerRef::LoopBack(3),
                        count: 29,
                    }),
                },
            ],
        }
    }

    #[test]
    fn valid_file_passes() {
        assert_eq!(file().validate(), Ok(()));
        assert!((file().total_weight() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bad_weight_sum_fails() {
        let mut f = file();
        f.regions[0].weight = 0.9;
        assert!(f.validate().is_err());
    }

    #[test]
    fn duplicate_phase_fails() {
        let mut f = file();
        f.regions[1].phase = 0;
        assert!(f.validate().is_err());
    }

    #[test]
    fn empty_file_fails() {
        let mut f = file();
        f.regions.clear();
        assert!(f.validate().is_err());
    }
}
