//! Basic Block Vector (BBV) accumulation.
//!
//! A BBV is the per-interval frequency vector SimPoint clusters (paper
//! §2.2): element *i* counts how many times static basic block *i* was
//! entered during the interval, weighted by the number of instructions
//! in the block. Dimensionality is the binary's static block count, so
//! BBVs are only comparable *within* one binary — which is precisely why
//! cross-binary simulation points cannot be found by comparing vectors
//! and need mappable markers instead.

use cbsp_program::BlockId;
use serde::{Deserialize, Serialize};

/// Accumulates one interval's basic-block vector.
#[derive(Debug, Clone)]
pub struct BbvBuilder {
    current: Vec<f64>,
    instrs: u64,
}

impl BbvBuilder {
    /// Creates a builder for a binary with `dims` static blocks.
    pub fn new(dims: usize) -> Self {
        BbvBuilder {
            current: vec![0.0; dims],
            instrs: 0,
        }
    }

    /// Records one execution of `block` committing `instrs` instructions.
    #[inline]
    pub fn observe(&mut self, block: BlockId, instrs: u64) {
        self.current[block.index()] += instrs as f64;
        self.instrs += instrs;
    }

    /// Instructions accumulated in the current interval so far.
    #[inline]
    pub fn instrs(&self) -> u64 {
        self.instrs
    }

    /// Closes the current interval, returning its (unnormalized) BBV and
    /// instruction count, and resets the accumulator.
    pub fn take_interval(&mut self) -> (Vec<f64>, u64) {
        let instrs = self.instrs;
        self.instrs = 0;
        let dims = self.current.len();
        let bbv = std::mem::replace(&mut self.current, vec![0.0; dims]);
        (bbv, instrs)
    }
}

/// One profiled interval: its BBV and the instructions it spans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Unnormalized, instruction-weighted basic-block vector.
    pub bbv: Vec<f64>,
    /// Instructions executed in this interval.
    pub instrs: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_weights_by_instructions() {
        let mut b = BbvBuilder::new(3);
        b.observe(BlockId(0), 10);
        b.observe(BlockId(0), 10);
        b.observe(BlockId(2), 5);
        assert_eq!(b.instrs(), 25);
        let (bbv, instrs) = b.take_interval();
        assert_eq!(bbv, vec![20.0, 0.0, 5.0]);
        assert_eq!(instrs, 25);
    }

    #[test]
    fn take_interval_resets() {
        let mut b = BbvBuilder::new(2);
        b.observe(BlockId(1), 7);
        let _ = b.take_interval();
        assert_eq!(b.instrs(), 0);
        let (bbv, instrs) = b.take_interval();
        assert_eq!(bbv, vec![0.0, 0.0]);
        assert_eq!(instrs, 0);
    }
}
