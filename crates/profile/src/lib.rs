//! # cbsp-profile — Pin-like instrumentation
//!
//! Profiling sinks over the [`cbsp_program`] execution event stream,
//! playing the role Pin and the PinPoints tool chain play in the paper:
//!
//! * [`profile_fli`] / [`FliProfiler`] — fixed-length-interval BBV
//!   profiling (classic SimPoint slicing, paper §2.1–2.2);
//! * [`CallLoopProfile`] — the call-and-branch profile of §3.2.1
//!   (procedure entries, loop entries, loop-body counts);
//! * [`MarkerCounts`] / [`ExecPoint`] — marker execution coordinates,
//!   the `(marker ID, execution count)` pairs of §3.2.3;
//! * [`PinPointsFile`] — serializable simulation-region files handed to
//!   the simulator (§4).
//!
//! ## Example
//!
//! ```
//! use cbsp_program::{workloads, compile, CompileTarget, Input, Scale};
//! use cbsp_profile::profile_fli;
//!
//! let prog = workloads::by_name("swim").expect("in suite").build(Scale::Test);
//! let bin = compile(&prog, CompileTarget::W32_O2);
//! let intervals = profile_fli(&bin, &Input::test(), 10_000);
//! assert!(!intervals.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bbfile;
pub mod bbv;
pub mod callloop;
pub mod fli;
pub mod hotness;
pub mod markers;
pub mod mav;
pub mod pinpoints;

pub use bbfile::{parse_bb, write_bb, ParseBbError};
pub use bbv::{BbvBuilder, Interval};
pub use callloop::{CallGraph, CallLoopProfile};
pub use fli::{profile_fli, FliProfiler};
pub use hotness::ProcHotness;
pub use markers::{ExecPoint, MarkerCounts, MarkerRef};
pub use mav::MavBuilder;
pub use pinpoints::{PinPointsFile, RegionBound, SimRegion};
