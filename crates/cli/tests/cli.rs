//! End-to-end tests of the `cbsp` binary: each tool-chain stage run as
//! a real subprocess, files flowing between stages.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cbsp(dir: &PathBuf, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cbsp"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("cbsp binary runs")
}

fn assert_ok(out: &Output, what: &str) -> String {
    assert!(
        out.status.success(),
        "{what} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).to_string()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cbsp-cli-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn list_shows_the_suite() {
    let dir = temp_dir("list");
    let out = assert_ok(&cbsp(&dir, &["list"]), "list");
    for name in ["gcc", "applu", "mcf", "wupwise"] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
}

#[test]
fn help_and_errors() {
    let dir = temp_dir("help");
    let out = assert_ok(&cbsp(&dir, &["help"]), "help");
    assert!(out.contains("usage: cbsp"));

    let bad = cbsp(&dir, &["frobnicate"]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown command"));

    let bad = cbsp(&dir, &["compile", "nosuchbench"]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown benchmark"));
}

#[test]
fn compile_inspect_profile_simpoint_chain() {
    let dir = temp_dir("chain");
    let out = assert_ok(
        &cbsp(
            &dir,
            &[
                "compile", "gzip", "--target", "32o", "--scale", "test", "--out", "bin.json",
            ],
        ),
        "compile",
    );
    assert!(out.contains("compiled gzip-32o"));
    assert!(dir.join("bin.json").exists());

    let out = assert_ok(&cbsp(&dir, &["inspect", "bin.json"]), "inspect");
    assert!(out.contains("binary gzip-32o"));
    assert!(out.contains("deflate"), "symbols listed:\n{out}");

    let out = assert_ok(
        &cbsp(
            &dir,
            &[
                "profile",
                "bin.json",
                "--interval",
                "20000",
                "--scale",
                "test",
                "--out",
                "p.bb",
            ],
        ),
        "profile",
    );
    assert!(out.contains("intervals over"));
    let bb = std::fs::read_to_string(dir.join("p.bb")).expect("bb written");
    assert!(bb.starts_with('T'));

    let out = assert_ok(
        &cbsp(
            &dir,
            &["simpoint", "p.bb", "--max-k", "6", "--out", "sp.json"],
        ),
        "simpoint",
    );
    assert!(out.contains("phases"));
    assert!(dir.join("sp.json").exists());
}

#[test]
fn cross_then_simulate_regions() {
    let dir = temp_dir("cross");
    let out = assert_ok(
        &cbsp(
            &dir,
            &[
                "cross",
                "swim",
                "--scale",
                "test",
                "--interval",
                "20000",
                "--out-dir",
                "out",
            ],
        ),
        "cross",
    );
    assert!(out.contains("mappable points"));
    for label in ["swim-32u", "swim-32o", "swim-64u", "swim-64o"] {
        assert!(dir.join(format!("out/{label}.json")).exists());
        assert!(dir.join(format!("out/{label}.pinpoints.json")).exists());
    }

    let out = assert_ok(
        &cbsp(
            &dir,
            &[
                "simulate",
                "out/swim-64o.json",
                "--regions",
                "out/swim-64o.pinpoints.json",
                "--full",
                "1",
                "--scale",
                "test",
            ],
        ),
        "simulate",
    );
    assert!(out.contains("estimated whole-program CPI"));
    assert!(out.contains("true whole-program CPI"));
    // Every region of a matching (binary, input) pair must be reached.
    assert!(!out.contains("false"), "unreached region:\n{out}");
}

#[test]
fn cross_serves_warm_run_from_cache() {
    let dir = temp_dir("cache");
    let args = &[
        "cross",
        "mcf",
        "--scale",
        "test",
        "--interval",
        "20000",
        "--out-dir",
        "out",
        "--cache-dir",
        "store",
    ];
    let cold = assert_ok(&cbsp(&dir, args), "cold cross");
    assert!(
        cold.contains("cache: 0 of"),
        "cold run computes everything:\n{cold}"
    );

    let warm = assert_ok(&cbsp(&dir, args), "warm cross");
    // All 8 stage executions (4 profiles + mappable + vli + simpoint +
    // map) served from the store on the second run.
    assert!(
        warm.contains("cache: 8 of 8 stage executions"),
        "warm run fully cached:\n{warm}"
    );
    for stage in [
        "profile 4/4",
        "mappable 1/1",
        "vli 1/1",
        "simpoint 1/1",
        "map 1/1",
    ] {
        assert!(warm.contains(stage), "missing {stage} in:\n{warm}");
    }

    // Cached results are identical to an uncached run.
    let nocache = assert_ok(
        &cbsp(
            &dir,
            &[
                "cross",
                "mcf",
                "--scale",
                "test",
                "--interval",
                "20000",
                "--out-dir",
                "plain",
                "--no-cache",
                "1",
            ],
        ),
        "uncached cross",
    );
    assert!(nocache.contains("cache: bypassed"));
    for label in ["mcf-32u", "mcf-32o", "mcf-64u", "mcf-64o"] {
        let cached = std::fs::read(dir.join(format!("out/{label}.pinpoints.json")))
            .expect("cached pinpoints");
        let plain = std::fs::read(dir.join(format!("plain/{label}.pinpoints.json")))
            .expect("uncached pinpoints");
        assert_eq!(cached, plain, "{label} region files differ");
    }

    let stats = assert_ok(
        &cbsp(&dir, &["cache", "stats", "--cache-dir", "store"]),
        "stats",
    );
    assert!(
        stats.contains("8 artifacts"),
        "store holds the run:\n{stats}"
    );
    assert!(stats.contains("run "), "manifests listed:\n{stats}");
    assert!(
        stats.contains("cross mcf"),
        "run description shown:\n{stats}"
    );

    // Everything is referenced by a manifest, so gc removes nothing.
    let gc = assert_ok(&cbsp(&dir, &["cache", "gc", "--cache-dir", "store"]), "gc");
    assert!(gc.contains("removed 0 artifacts"), "{gc}");
    assert!(gc.contains("kept 8"), "{gc}");

    let bad = cbsp(&dir, &["cache", "shred", "--cache-dir", "store"]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown cache action"));
}

#[test]
fn perbinary_produces_a_valid_region_file() {
    let dir = temp_dir("perbinary");
    assert_ok(
        &cbsp(
            &dir,
            &[
                "compile", "eon", "--target", "64u", "--scale", "test", "--out", "eon.json",
            ],
        ),
        "compile",
    );
    let out = assert_ok(
        &cbsp(
            &dir,
            &[
                "perbinary",
                "eon.json",
                "--interval",
                "20000",
                "--scale",
                "test",
                "--out",
                "pp.json",
            ],
        ),
        "perbinary",
    );
    assert!(out.contains("phases"));
    // The produced file drives the region simulator.
    let out = assert_ok(
        &cbsp(
            &dir,
            &[
                "simulate",
                "eon.json",
                "--regions",
                "pp.json",
                "--full",
                "1",
                "--scale",
                "test",
            ],
        ),
        "simulate",
    );
    assert!(out.contains("estimate error"));
}

#[test]
fn hot_source_and_markers_commands() {
    let dir = temp_dir("tools");
    assert_ok(
        &cbsp(
            &dir,
            &[
                "compile",
                "swim",
                "--target",
                "32o",
                "--scale",
                "test",
                "--out",
                "swim.json",
            ],
        ),
        "compile",
    );

    let out = assert_ok(&cbsp(&dir, &["hot", "swim.json", "--scale", "test"]), "hot");
    assert!(
        out.contains("calc1"),
        "hot procedures listed:
{out}"
    );
    assert!(out.contains('%'));

    let out = assert_ok(&cbsp(&dir, &["source", "swim"]), "source");
    assert!(out.contains("program swim"));
    assert!(out.contains("fn calc1()"));

    let out = assert_ok(
        &cbsp(
            &dir,
            &[
                "markers",
                "swim.json",
                "--scale",
                "test",
                "--interval",
                "20000",
            ],
        ),
        "markers",
    );
    assert!(out.contains("markers profiled"), "{out}");

    let out = assert_ok(
        &cbsp(&dir, &["inspect", "swim.json", "--code", "1"]),
        "inspect --code",
    );
    assert!(
        out.contains("instrs"),
        "lowered code shown:
{out}"
    );
}

#[test]
fn simulate_rejects_mismatched_region_files() {
    let dir = temp_dir("mismatch");
    assert_ok(
        &cbsp(
            &dir,
            &[
                "compile", "art", "--target", "32o", "--scale", "test", "--out", "art.json",
            ],
        ),
        "compile art",
    );
    assert_ok(
        &cbsp(
            &dir,
            &[
                "compile", "mcf", "--target", "32o", "--scale", "test", "--out", "mcf.json",
            ],
        ),
        "compile mcf",
    );
    assert_ok(
        &cbsp(
            &dir,
            &[
                "perbinary",
                "mcf.json",
                "--interval",
                "20000",
                "--scale",
                "test",
                "--out",
                "pp.json",
            ],
        ),
        "perbinary mcf",
    );
    // Using mcf's regions on art: instruction-offset regions may or may
    // not be reachable, but the command itself must not crash.
    let out = cbsp(
        &dir,
        &[
            "simulate",
            "art.json",
            "--regions",
            "pp.json",
            "--scale",
            "test",
        ],
    );
    assert!(out.status.success(), "graceful handling of foreign regions");
}
