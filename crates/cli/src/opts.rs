//! Tiny argument-parsing helpers shared by the subcommands.

use cbsp_core::FuzzyConfig;
use cbsp_program::{Input, Scale};
use std::collections::BTreeMap;

/// Parsed command line: positional arguments plus flags. Flags accept
/// three spellings: `--key value`, `--key=value`, and a bare `--key`
/// (stored with an empty value, for presence-only switches such as
/// `--fuzzy-map`).
#[derive(Debug, Clone, Default)]
pub struct Opts {
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    flags: BTreeMap<String, String>,
}

impl Opts {
    /// Parses everything after the subcommand. A bare `--key` whose
    /// next token is another flag (or the end of the line) is recorded
    /// as present with an empty value; `--key=value` binds explicitly.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut opts = Opts::default();
        let mut args = args.peekable();
        while let Some(a) = args.next() {
            if let Some(key) = a.strip_prefix("--") {
                if let Some((key, value)) = key.split_once('=') {
                    opts.flags.insert(key.to_string(), value.to_string());
                } else if args.peek().is_some_and(|next| !next.starts_with("--")) {
                    let value = args.next().expect("peeked");
                    opts.flags.insert(key.to_string(), value);
                } else {
                    opts.flags.insert(key.to_string(), String::new());
                }
            } else {
                opts.positional.push(a);
            }
        }
        Ok(opts)
    }

    /// Returns a flag's raw value.
    pub fn flag(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Returns a parsed flag value or a default.
    pub fn flag_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v}")),
        }
    }

    /// The scale from `--scale test|train|ref` (default `train`).
    pub fn scale(&self) -> Result<Scale, String> {
        match self.flag("scale").unwrap_or("train") {
            "test" => Ok(Scale::Test),
            "train" => Ok(Scale::Train),
            "ref" | "reference" => Ok(Scale::Reference),
            other => Err(format!("bad --scale {other} (test|train|ref)")),
        }
    }

    /// The standard input for the chosen scale.
    pub fn input(&self) -> Result<Input, String> {
        Ok(match self.scale()? {
            Scale::Test => Input::test(),
            Scale::Train => Input::train(),
            Scale::Reference => Input::reference(),
        })
    }

    /// Worker-thread count from `--threads N` (default 0 = one per
    /// available core). Results are bit-identical at every setting.
    pub fn threads(&self) -> Result<usize, String> {
        self.flag_or("threads", 0usize)
    }

    /// The fuzzy-mapping fallback from `--fuzzy-map[=threshold]`:
    /// absent ⇒ exact-only mapping, bare ⇒ the default acceptance
    /// threshold, `--fuzzy-map=0.5` ⇒ a custom one in `(0, 1]`.
    pub fn fuzzy(&self) -> Result<Option<FuzzyConfig>, String> {
        match self.flag("fuzzy-map") {
            None => Ok(None),
            Some("") => Ok(Some(FuzzyConfig::default())),
            Some(v) => {
                let threshold: f64 = v
                    .parse()
                    .map_err(|_| format!("bad value for --fuzzy-map: {v}"))?;
                if !(threshold > 0.0 && threshold <= 1.0) {
                    return Err(format!("--fuzzy-map threshold {threshold} outside (0, 1]"));
                }
                Ok(Some(FuzzyConfig { threshold }))
            }
        }
    }

    /// The artifact-store directory from `--cache-dir` (default
    /// `.cbsp-cache`).
    pub fn cache_dir(&self) -> &str {
        self.flag("cache-dir").unwrap_or(".cbsp-cache")
    }

    /// The cache policy from `--no-cache 1` / `--refresh 1`.
    pub fn cache_policy(&self) -> Result<cbsp_store::CachePolicy, String> {
        let no_cache = self.flag_or("no-cache", 0u8)? != 0;
        let refresh = self.flag_or("refresh", 0u8)? != 0;
        match (no_cache, refresh) {
            (true, true) => Err("--no-cache and --refresh are mutually exclusive".into()),
            (true, false) => Ok(cbsp_store::CachePolicy::Bypass),
            (false, true) => Ok(cbsp_store::CachePolicy::Refresh),
            (false, false) => Ok(cbsp_store::CachePolicy::ReadWrite),
        }
    }

    /// Chrome trace-event output path from `--trace-out FILE`.
    /// Present ⇒ tracing is enabled for the run.
    pub fn trace_out(&self) -> Option<&str> {
        self.flag("trace-out")
    }

    /// Flat metrics snapshot output path from `--metrics-json FILE`.
    /// Present ⇒ tracing is enabled for the run.
    pub fn metrics_out(&self) -> Option<&str> {
        self.flag("metrics-json")
    }

    /// Enables the trace collector when either observability flag is
    /// set; returns whether it was enabled.
    pub fn enable_tracing(&self) -> bool {
        let wanted = self.trace_out().is_some() || self.metrics_out().is_some();
        if wanted {
            cbsp_trace::reset();
            cbsp_trace::enable();
        }
        wanted
    }

    /// Writes the requested observability artifacts (and disables the
    /// collector) if `--trace-out` / `--metrics-json` were given.
    pub fn export_tracing(&self) -> Result<(), String> {
        if self.trace_out().is_none() && self.metrics_out().is_none() {
            return Ok(());
        }
        if let Some(path) = self.trace_out() {
            std::fs::write(path, cbsp_trace::chrome_trace_json())
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("trace written to {path} (load in chrome://tracing or ui.perfetto.dev)");
        }
        if let Some(path) = self.metrics_out() {
            std::fs::write(path, cbsp_trace::metrics_json())
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("metrics written to {path}");
        }
        cbsp_trace::disable();
        Ok(())
    }

    /// Requires the n-th positional argument.
    pub fn positional(&self, index: usize, what: &str) -> Result<&str, String> {
        self.positional
            .get(index)
            .map(String::as_str)
            .ok_or_else(|| format!("missing {what}"))
    }
}

/// Reads a JSON file into a deserializable value.
pub fn read_json<T: serde::de::DeserializeOwned>(path: &str) -> Result<T, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))
}

/// Writes a serializable value as pretty JSON.
pub fn write_json<T: serde::Serialize>(path: &str, value: &T) -> Result<(), String> {
    let text = serde_json::to_string_pretty(value).map_err(|e| format!("serializing: {e}"))?;
    std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_and_positionals() {
        let o = Opts::parse(
            ["gcc", "--target", "32o", "--interval", "5000", "out.json"]
                .iter()
                .map(|s| s.to_string()),
        )
        .expect("parses");
        assert_eq!(o.positional, vec!["gcc", "out.json"]);
        assert_eq!(o.flag("target"), Some("32o"));
        assert_eq!(o.flag_or("interval", 0u64).expect("number"), 5000);
        assert_eq!(o.flag_or("missing", 7u64).expect("default"), 7);
    }

    #[test]
    fn valueless_equals_and_bad_values() {
        // A bare flag is present with an empty value…
        let o = Opts::parse(["--out"].iter().map(|s| s.to_string())).expect("parses");
        assert_eq!(o.flag("out"), Some(""));
        // …and `--key=value` binds explicitly, even before a flag.
        let o = Opts::parse(
            ["--interval=5000", "--no-cache", "--scale", "test"]
                .iter()
                .map(|s| s.to_string()),
        )
        .expect("parses");
        assert_eq!(o.flag_or("interval", 0u64).expect("number"), 5000);
        assert_eq!(o.flag("no-cache"), Some(""));
        assert_eq!(o.scale().expect("valid"), Scale::Test);
        let o = Opts::parse(["--interval", "abc"].iter().map(|s| s.to_string())).expect("parses");
        assert!(o.flag_or("interval", 0u64).is_err());
        assert!(o.scale().is_ok(), "default scale");
    }

    #[test]
    fn fuzzy_flag_forms() {
        let parse =
            |args: &[&str]| Opts::parse(args.iter().map(|s| s.to_string())).expect("parses");
        assert_eq!(parse(&[]).fuzzy().expect("absent"), None);
        assert_eq!(
            parse(&["--fuzzy-map"]).fuzzy().expect("bare"),
            Some(FuzzyConfig::default())
        );
        assert_eq!(
            parse(&["--fuzzy-map=0.45"]).fuzzy().expect("custom"),
            Some(FuzzyConfig { threshold: 0.45 })
        );
        assert_eq!(
            parse(&["--fuzzy-map", "0.45"]).fuzzy().expect("spaced"),
            Some(FuzzyConfig { threshold: 0.45 })
        );
        assert!(parse(&["--fuzzy-map=zero"]).fuzzy().is_err());
        assert!(parse(&["--fuzzy-map=0"]).fuzzy().is_err());
        assert!(parse(&["--fuzzy-map=1.5"]).fuzzy().is_err());
    }

    #[test]
    fn scale_parsing() {
        let o = Opts::parse(["--scale", "ref"].iter().map(|s| s.to_string())).expect("parses");
        assert_eq!(o.scale().expect("valid"), Scale::Reference);
        let o = Opts::parse(["--scale", "huge"].iter().map(|s| s.to_string())).expect("parses");
        assert!(o.scale().is_err());
    }
}
