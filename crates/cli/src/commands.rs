//! The `cbsp` subcommands.

use crate::opts::{read_json, write_json, Opts};
use cbsp_core::{
    mapping_stats, marker_period_stats, run_per_binary, select_phase_markers, CbspConfig, PointKind,
};
use cbsp_par::Pool;
use cbsp_profile::{parse_bb, write_bb, PinPointsFile, ProcHotness};
use cbsp_program::{
    compile, compile_cost_estimate_ns, workloads, Binary, CompileTarget, OptLevel, Width,
};
use cbsp_sim::{estimate_cpi_from_regions, simulate_full, simulate_regions, MemoryConfig};
use cbsp_simpoint::{analyze, EstimatorConfig, SimPointConfig};
use cbsp_store::{ArtifactStore, CachePolicy, Orchestrator, TraceCache};

/// `cbsp list` — the benchmark suite.
pub fn list(_opts: &Opts) -> Result<(), String> {
    println!("available benchmarks ({}):", workloads::suite().len());
    for w in workloads::suite() {
        println!("  {:<10} {}", w.name, w.description);
    }
    println!("\ntargets: 32u 32o 64u 64o   scales: test train ref");
    Ok(())
}

/// Parses the `--estimator` lane flag shared by `cross` and `estimate`.
fn parse_estimator(opts: &Opts) -> Result<EstimatorConfig, String> {
    let tag = opts.flag("estimator").unwrap_or("bbv");
    EstimatorConfig::parse(tag).ok_or_else(|| {
        format!(
            "bad estimator {tag} ({})",
            EstimatorConfig::KNOWN_TAGS.join("|")
        )
    })
}

fn parse_target(s: &str) -> Result<CompileTarget, String> {
    match s {
        "32u" => Ok(CompileTarget::W32_O0),
        "32o" => Ok(CompileTarget::W32_O2),
        "64u" => Ok(CompileTarget::W64_O0),
        "64o" => Ok(CompileTarget::W64_O2),
        other => Err(format!("bad target {other} (32u|32o|64u|64o)")),
    }
}

/// `cbsp compile <benchmark> [--target 32o] [--scale train] [--out F]`
pub fn compile_cmd(opts: &Opts) -> Result<(), String> {
    let name = opts.positional(0, "benchmark name")?;
    let target = parse_target(opts.flag("target").unwrap_or("32o"))?;
    let workload = workloads::by_name(name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let binary = compile(&workload.build(opts.scale()?), target);
    let out = opts
        .flag("out")
        .map(str::to_string)
        .unwrap_or_else(|| format!("{}.json", binary.label()));
    write_json(&out, &binary)?;
    println!(
        "compiled {} -> {} ({} blocks, {} procs, {} loops)",
        binary.label(),
        out,
        binary.blocks.len(),
        binary.procs.len(),
        binary.loops.len()
    );
    Ok(())
}

/// `cbsp inspect <binary.json>` — symbol table, loops, layout.
pub fn inspect(opts: &Opts) -> Result<(), String> {
    let binary: Binary = read_json(opts.positional(0, "binary file")?)?;
    println!("binary {}", binary.label());
    println!(
        "  target: {}-bit, {}",
        match binary.target.width {
            Width::W32 => 32,
            Width::W64 => 64,
        },
        match binary.target.opt {
            OptLevel::O0 => "unoptimized",
            OptLevel::O2 => "optimized",
        }
    );
    let static_instrs: u64 = binary.blocks.iter().map(|b| b.instrs).sum();
    println!(
        "  {} basic blocks ({static_instrs} static instructions), {} arrays",
        binary.blocks.len(),
        binary.layout.arrays.len()
    );
    println!("  procedures:");
    for p in &binary.procs {
        println!("    {} @ {}", p.name, p.line);
    }
    println!("  loops:");
    for (i, l) in binary.loops.iter().enumerate() {
        let line = l
            .line
            .map(|ln| ln.to_string())
            .unwrap_or_else(|| "<no line info>".to_string());
        let proc = &binary.procs[l.proc.index()].name;
        let unroll = if l.unroll > 1 {
            format!(", unrolled x{}", l.unroll)
        } else {
            String::new()
        };
        println!("    L{i} in {proc} @ {line}{unroll}");
    }
    if opts.flag("code").is_some() {
        println!(
            "
{}",
            binary.disassemble()
        );
    }
    Ok(())
}

/// `cbsp profile <binary.json> [--interval N] [--scale S] [--out F.bb]`
pub fn profile(opts: &Opts) -> Result<(), String> {
    let path = opts.positional(0, "binary file")?;
    let binary: Binary = read_json(path)?;
    let interval = opts.flag_or("interval", 100_000u64)?;
    let input = opts.input()?;
    let intervals = cbsp_profile::profile_fli(&binary, &input, interval);
    let out = opts
        .flag("out")
        .map(str::to_string)
        .unwrap_or_else(|| format!("{}.bb", binary.label()));
    std::fs::write(&out, write_bb(&intervals)).map_err(|e| format!("writing {out}: {e}"))?;
    let total: u64 = intervals.iter().map(|i| i.instrs).sum();
    println!(
        "profiled {}: {} intervals over {} instructions -> {}",
        binary.label(),
        intervals.len(),
        total,
        out
    );
    Ok(())
}

/// `cbsp simpoint <profile.bb> [--max-k K] [--dims D] [--out F.json]`
pub fn simpoint(opts: &Opts) -> Result<(), String> {
    let path = opts.positional(0, "profile (.bb) file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let intervals = parse_bb(&text).map_err(|e| format!("{path}: {e}"))?;
    if intervals.is_empty() {
        return Err(format!("{path} contains no intervals"));
    }
    let config = SimPointConfig {
        max_k: opts.flag_or("max-k", 10usize)?,
        projection_dims: opts.flag_or("dims", 15usize)?,
        bic_threshold: opts.flag_or("theta", 0.9f64)?,
        ..SimPointConfig::default()
    };
    let vectors: Vec<Vec<f64>> = intervals.iter().map(|i| i.bbv.clone()).collect();
    let instrs: Vec<u64> = intervals.iter().map(|i| i.instrs).collect();
    let result = analyze(&vectors, &instrs, &config);
    println!(
        "{} intervals -> {} phases (BIC over k=1..{}):",
        intervals.len(),
        result.k,
        config.max_k
    );
    println!(
        "{:>6} {:>9} {:>8} {:>12}",
        "phase", "interval", "weight", "variance"
    );
    for p in &result.points {
        println!(
            "{:>6} {:>9} {:>8.4} {:>12.6}",
            p.phase, p.interval, p.weight, p.variance
        );
    }
    if let Some(out) = opts.flag("out") {
        write_json(out, &result)?;
        println!("wrote {out}");
    }
    Ok(())
}

/// `cbsp cross <benchmark> [--interval N] [--scale S] [--threads N]
/// [--estimator bbv|bbv+mav|early|stratified] [--fuzzy-map[=T]]
/// [--out-dir D] [--cache-dir D] [--no-cache 1] [--refresh 1]` — the
/// full six-step pipeline; writes the four binaries and their
/// PinPoints region files. Stages are served from the
/// content-addressed artifact store when their inputs are unchanged —
/// each estimator lane caches under its own namespace, so lanes never
/// collide, and `--fuzzy-map` runs under `@fuzzy`-suffixed namespaces
/// so it can never poison an exact lane. `--threads` sizes the shared
/// pool (0 = one per core); output is bit-identical at every setting.
pub fn cross(opts: &Opts) -> Result<(), String> {
    let name = opts.positional(0, "benchmark name")?;
    let workload = workloads::by_name(name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let scale = opts.scale()?;
    let program = workload.build(scale);
    let input = opts.input()?;
    let estimator = parse_estimator(opts)?;
    let config = CbspConfig {
        interval_target: opts.flag_or("interval", 100_000u64)?,
        estimator,
        fuzzy: opts.fuzzy()?,
        simpoint: SimPointConfig {
            threads: opts.threads()?,
            ..SimPointConfig::default()
        },
        ..CbspConfig::default()
    };
    let out_dir = opts.flag("out-dir").unwrap_or(".");
    std::fs::create_dir_all(out_dir).map_err(|e| format!("creating {out_dir}: {e}"))?;

    let pool = Pool::new(config.simpoint.threads);
    // Compiling all four binaries is microseconds of work; the
    // work-size gate keeps it off the pool unless the program is big
    // enough to amortize the fan-out.
    let binaries: Vec<Binary> = {
        let _span = cbsp_trace::span_labeled("stage/compile", || name.to_string());
        let est = compile_cost_estimate_ns(&program) * CompileTarget::ALL_FOUR.len() as u64;
        pool.for_work(est)
            .run_indexed(CompileTarget::ALL_FOUR.len(), |i| {
                compile(&program, CompileTarget::ALL_FOUR[i])
            })
    };
    let policy = opts.cache_policy()?;
    let store = ArtifactStore::open(opts.cache_dir()).map_err(|e| e.to_string())?;
    let orchestrator = Orchestrator::new(&store, policy);
    let mut description = if config.estimator.is_default() {
        format!(
            "cross {name} scale={scale:?} interval={}",
            config.interval_target
        )
    } else {
        format!(
            "cross {name} scale={scale:?} interval={} estimator={}",
            config.interval_target,
            config.estimator.tag()
        )
    };
    if let Some(fuzzy) = &config.fuzzy {
        description.push_str(&format!(" fuzzy-map={}", fuzzy.threshold));
    }
    let (result, report) = orchestrator
        .run_cross_binary(
            &binaries.iter().collect::<Vec<_>>(),
            &input,
            &config,
            &description,
        )
        .map_err(|e| e.to_string())?;
    if policy == CachePolicy::Bypass {
        println!("cache: bypassed (--no-cache)");
    } else {
        let summary: Vec<String> = report
            .stage_summary()
            .iter()
            .map(|(stage, hits, total)| format!("{stage} {hits}/{total}"))
            .collect();
        println!(
            "cache: {} of {} stage executions served from {} ({})",
            report.hits(),
            report.outcomes.len(),
            opts.cache_dir(),
            summary.join(", ")
        );
    }

    println!(
        "{name}: {} mappable points ({} proc entries, {} loop entries, {} loop bodies; {} procedures recovered)",
        result.mappable.points.len(),
        result.mappable.of_kind(PointKind::ProcEntry).count(),
        result.mappable.of_kind(PointKind::LoopEntry).count(),
        result.mappable.of_kind(PointKind::LoopBody).count(),
        result.recovered_procs,
    );
    println!(
        "marker density: {:.1} mappable executions per target interval{}",
        result
            .mappable
            .density(result.vli.total_instrs(), config.interval_target),
        if result
            .mappable
            .density(result.vli.total_instrs(), config.interval_target)
            < 2.0
        {
            "  (LOW: expect oversized intervals)"
        } else {
            ""
        }
    );
    println!(
        "{} intervals (avg {:.0} instructions), {} phases{}",
        result.interval_count(),
        result.vli.average_interval_size(),
        result.simpoint.k,
        if config.estimator.is_default() {
            String::new()
        } else {
            format!(
                ", {} points (estimator {})",
                result.simpoint.points.len(),
                config.estimator.tag()
            )
        }
    );
    if let Some(fuzzy) = &config.fuzzy {
        let stats = mapping_stats(&result.mappings);
        println!(
            "fuzzy mapping (threshold {}): {} exact, {} fuzzy (mean confidence {:.3}), \
             {} unmapped — {:.0}% of simpoints mapped",
            fuzzy.threshold,
            stats.exact,
            stats.fuzzy,
            stats.mean_confidence,
            stats.unmapped,
            stats.mapped_fraction() * 100.0
        );
    }
    for (b, bin) in binaries.iter().enumerate() {
        let bin_path = format!("{out_dir}/{}.json", bin.label());
        write_json(&bin_path, bin)?;
        let pp = result.pinpoints_for(b, bin, &input);
        let pp_path = format!("{out_dir}/{}.pinpoints.json", bin.label());
        write_json(&pp_path, &pp)?;
        println!("  {} -> {bin_path}, {pp_path}", bin.label());
    }
    Ok(())
}

/// `cbsp markers <binary.json> [--scale S] [--interval N] [--top N]` —
/// software-phase-marker analysis (period regularity per marker).
pub fn markers(opts: &Opts) -> Result<(), String> {
    let binary: Binary = read_json(opts.positional(0, "binary file")?)?;
    let input = opts.input()?;
    let target = opts.flag_or("interval", 100_000u64)?;
    let top = opts.flag_or("top", 10usize)?;
    let stats = marker_period_stats(&binary, &input);
    let picked = select_phase_markers(&stats, target / 2, 20.0, 0.5);
    println!(
        "{}: {} markers profiled, {} phase-marker candidates near {} instructions",
        binary.label(),
        stats.len(),
        picked.len(),
        target
    );
    println!(
        "{:<16} {:<20} {:>8} {:>14} {:>8}",
        "marker", "construct", "execs", "mean period", "CV"
    );
    for s in picked.iter().take(top) {
        let construct = match s.marker {
            cbsp_profile::MarkerRef::Proc(i) => {
                format!("proc {}", binary.procs[i as usize].name)
            }
            cbsp_profile::MarkerRef::LoopEntry(i) => {
                let l = &binary.loops[i as usize];
                format!("loop in {}", binary.procs[l.proc.index()].name)
            }
            cbsp_profile::MarkerRef::LoopBack(i) => format!("loop-body #{i}"),
        };
        println!(
            "{:<16} {:<20} {:>8} {:>14.0} {:>8.3}",
            s.marker.to_string(),
            construct,
            s.execs,
            s.mean_period,
            s.cv
        );
    }
    Ok(())
}

/// `cbsp source <benchmark> [--scale S]` — pseudo-C source listing.
pub fn source(opts: &Opts) -> Result<(), String> {
    let name = opts.positional(0, "benchmark name")?;
    let workload = workloads::by_name(name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    print!("{}", workload.build(opts.scale()?));
    Ok(())
}

/// `cbsp hot <binary.json> [--scale S] [--top N]` — hottest procedures.
pub fn hot(opts: &Opts) -> Result<(), String> {
    let binary: Binary = read_json(opts.positional(0, "binary file")?)?;
    let input = opts.input()?;
    let top = opts.flag_or("top", 10usize)?;
    let h = ProcHotness::collect(&binary, &input);
    println!(
        "{} on {} input: {} instructions",
        binary.label(),
        input.name,
        h.total
    );
    println!("{:<24} {:>14} {:>8}", "procedure", "instructions", "share");
    for (proc, instrs, frac) in h.ranking().into_iter().take(top) {
        if instrs == 0 {
            break;
        }
        println!(
            "{:<24} {:>14} {:>7.2}%",
            binary.procs[proc.index()].name,
            instrs,
            100.0 * frac
        );
    }
    Ok(())
}

/// `cbsp simulate <binary.json> --regions <pp.json> [--full] [--scale S]`
pub fn simulate(opts: &Opts) -> Result<(), String> {
    let binary: Binary = read_json(opts.positional(0, "binary file")?)?;
    let regions_path = opts
        .flag("regions")
        .ok_or("missing --regions <pinpoints.json>")?;
    let file: PinPointsFile = read_json(regions_path)?;
    file.validate()?;
    let input = opts.input()?;
    let mem = MemoryConfig::table1();

    let regions = simulate_regions(&binary, &input, &mem, &file);
    println!(
        "{:>6} {:>8} {:>12} {:>10} {:>8}",
        "phase", "weight", "instructions", "CPI", "reached"
    );
    for r in &regions {
        println!(
            "{:>6} {:>8.4} {:>12} {:>10.3} {:>8}",
            r.phase,
            r.weight,
            r.stats.instructions,
            r.stats.cpi(),
            r.reached
        );
    }
    let est = estimate_cpi_from_regions(&regions);
    println!("estimated whole-program CPI: {est:.4}");

    if opts.flag("full").is_some() {
        let full = simulate_full(&binary, &input, &mem);
        let err = 100.0 * (full.cpi() - est).abs() / full.cpi();
        println!(
            "true whole-program CPI:      {:.4}  (estimate error {err:.2}%)",
            full.cpi()
        );
        println!("full-simulation detail:\n{full}");
    }
    Ok(())
}

/// `cbsp perbinary <binary.json> [--interval N] [--scale S] [--out F]` —
/// the classic per-binary SimPoint baseline, producing a region file.
pub fn perbinary(opts: &Opts) -> Result<(), String> {
    let binary: Binary = read_json(opts.positional(0, "binary file")?)?;
    let interval = opts.flag_or("interval", 100_000u64)?;
    let input = opts.input()?;
    let analysis = run_per_binary(&binary, &input, interval, &SimPointConfig::default());
    println!(
        "{}: {} intervals -> {} phases",
        binary.label(),
        analysis.interval_count(),
        analysis.simpoint.k
    );
    let pp = analysis.pinpoints(&binary, &input);
    let out = opts
        .flag("out")
        .map(str::to_string)
        .unwrap_or_else(|| format!("{}.pinpoints.json", binary.label()));
    write_json(&out, &pp)?;
    println!("wrote {out}");
    Ok(())
}

/// `cbsp estimate <benchmark> [--interval N] [--scale S] [--threads N]
/// [--estimator bbv|bbv+mav|early|stratified] [--cache-dir D]
/// [--no-cache 1] [--refresh 1]` — true vs SimPoint-estimated CPI for
/// all four binaries, computed from per-simpoint trace slices. The
/// pipeline stages come from the artifact store like `cbsp cross`; the
/// CPI side reads the sliced trace manifest, so a warm run decodes
/// kilobytes of slice payload instead of each binary's full recorded
/// trace (DESIGN.md "Sliced traces"; set `CBSP_NO_TRACE_SLICES=1` to
/// force full replays). The stratified lane additionally reports a
/// confidence half-width per binary (zero for single-representative
/// lanes by construction).
pub fn estimate(opts: &Opts) -> Result<(), String> {
    let name = opts.positional(0, "benchmark name")?;
    let workload = workloads::by_name(name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let scale = opts.scale()?;
    let program = workload.build(scale);
    let input = opts.input()?;
    let estimator = parse_estimator(opts)?;
    let config = CbspConfig {
        interval_target: opts.flag_or("interval", 100_000u64)?,
        estimator,
        simpoint: SimPointConfig {
            threads: opts.threads()?,
            ..SimPointConfig::default()
        },
        ..CbspConfig::default()
    };
    let binaries: Vec<Binary> = CompileTarget::ALL_FOUR
        .iter()
        .map(|&t| compile(&program, t))
        .collect();
    let policy = opts.cache_policy()?;
    let store = ArtifactStore::open(opts.cache_dir()).map_err(|e| e.to_string())?;
    let orchestrator = Orchestrator::new(&store, policy);
    let (result, _) = orchestrator
        .run_cross_binary(
            &binaries.iter().collect::<Vec<_>>(),
            &input,
            &config,
            &format!("estimate {name} scale={scale:?}"),
        )
        .map_err(|e| e.to_string())?;

    // Bypass policy means "recompute everything", so skip the
    // persistent slice tier too and materialize in memory.
    let traces = if policy == CachePolicy::Bypass {
        TraceCache::in_memory()
    } else {
        TraceCache::new(Some(&store))
    };
    let mem = MemoryConfig::default();
    let pool = Pool::new(config.simpoint.threads);
    let n = result.interval_count();
    let estimates = pool.run_indexed(binaries.len(), |b| {
        traces.estimate_cpi_sliced(
            &binaries[b],
            &input,
            &mem,
            &result.boundaries[b],
            &result.simpoint.points,
            Some(&result.weights[b]),
            n,
        )
    });
    println!(
        "{name}: {} intervals, {} phases, {} simulation points (estimator {})",
        n,
        result.simpoint.k,
        result.simpoint.points.len(),
        config.estimator.tag()
    );
    println!(
        "{:<10} {:>12} {:>10} {:>12} {:>10} {:>10}",
        "binary", "instructions", "true CPI", "estimated", "rel error", "CI ±"
    );
    for (b, est) in estimates.into_iter().enumerate() {
        let est = est.map_err(|e| e.to_string())?;
        let rel = if est.true_cpi > 0.0 {
            (est.estimated_cpi - est.true_cpi).abs() / est.true_cpi
        } else {
            0.0
        };
        let ci_half = cbsp_core::stratified_ci(
            &result.simpoint.points,
            &result.simpoint.labels,
            &result.weights[b],
            &est.interval_cpis,
        );
        println!(
            "{:<10} {:>12} {:>10.4} {:>12.4} {:>9.2}% {:>10.4}",
            binaries[b].label(),
            est.instructions,
            est.true_cpi,
            est.estimated_cpi,
            100.0 * rel,
            ci_half
        );
    }
    Ok(())
}

/// `cbsp cache <stats|gc|migrate> [--cache-dir D]` — inspect,
/// garbage-collect, or migrate the content-addressed artifact store.
///
/// The store holds three kinds of objects: pipeline stage artifacts
/// (referenced by run manifests), recorded event traces under the
/// `trace` namespace, and sliced-trace manifests under `trace_slice` —
/// the latter two unreferenced by any run manifest. `stats` reports
/// them separately, including per-format (JSON envelope vs binary
/// blob) populations; `gc` keeps manifest-referenced artifacts and
/// evicts traces and slices — they re-record / re-slice transparently
/// on next use; `migrate` rewrites legacy JSON trace envelopes as
/// binary blobs in bulk (new traces are written as blobs already, and
/// legacy ones also migrate on read).
pub fn cache(opts: &Opts) -> Result<(), String> {
    let action = opts.positional(0, "cache action (stats|gc|migrate)")?;
    let store = ArtifactStore::open(opts.cache_dir()).map_err(|e| e.to_string())?;
    match action {
        "stats" => {
            let stats = store.stats().map_err(|e| e.to_string())?;
            println!(
                "store {}: {} artifacts, {} bytes, {} manifests",
                opts.cache_dir(),
                stats.artifacts,
                stats.bytes,
                stats.manifests
            );
            let traces = stats
                .per_stage
                .get(cbsp_store::TRACE_STAGE)
                .cloned()
                .unwrap_or_default();
            let slices = stats
                .per_stage
                .get(cbsp_store::TRACE_SLICE_STAGE)
                .cloned()
                .unwrap_or_default();
            println!(
                "  pipeline stages: {} artifacts, {} bytes",
                stats.artifacts - traces.artifacts - slices.artifacts,
                stats.bytes - traces.bytes - slices.bytes
            );
            println!(
                "  trace cache:     {} artifacts, {} bytes (evicted by gc, re-recorded on use)",
                traces.artifacts, traces.bytes
            );
            println!(
                "  sliced traces:   {} artifacts, {} bytes (evicted by gc, re-sliced on use)",
                slices.artifacts, slices.bytes
            );
            // Format breakdown: pipeline stages are JSON envelopes,
            // trace/slice payloads are binary blobs; `cache migrate`
            // rewrites any legacy JSON trace artifacts as blobs.
            println!("  by format:");
            for format in ["json", "blob"] {
                let s = stats.per_format.get(format).cloned().unwrap_or_default();
                println!(
                    "    {format:<6} {} artifacts, {} bytes",
                    s.artifacts, s.bytes
                );
            }
            for (stage, s) in &stats.per_stage {
                println!("  {stage:<10} {} artifacts, {} bytes", s.artifacts, s.bytes);
            }
            // Lane breakdown: non-default estimator lanes cache their
            // stages under `stage@tag` namespaces (see
            // cbsp_store::stage_namespaces); plain pipeline stages
            // belong to the default `bbv` lane (profile/mappable are
            // shared by every lane and counted there).
            let mut lanes: std::collections::BTreeMap<&str, cbsp_store::StageStats> =
                std::collections::BTreeMap::new();
            for (stage, s) in &stats.per_stage {
                if stage == cbsp_store::TRACE_STAGE || stage == cbsp_store::TRACE_SLICE_STAGE {
                    continue;
                }
                let lane = match stage.split_once('@') {
                    Some((_, tag)) => tag,
                    None => "bbv",
                };
                let entry = lanes.entry(lane).or_default();
                entry.artifacts += s.artifacts;
                entry.bytes += s.bytes;
            }
            println!("  by estimator lane:");
            for (lane, s) in &lanes {
                println!(
                    "    {lane:<14} {} artifacts, {} bytes",
                    s.artifacts, s.bytes
                );
            }
            for manifest in store.manifests().map_err(|e| e.to_string())? {
                let hits = manifest.stages.iter().filter(|s| s.hit).count();
                println!(
                    "  run {}  {}  ({hits}/{} stage executions from cache)",
                    &manifest.run_key[..12.min(manifest.run_key.len())],
                    manifest.description,
                    manifest.stages.len()
                );
            }
            Ok(())
        }
        "gc" => {
            let report = store.gc().map_err(|e| e.to_string())?;
            println!(
                "gc {}: removed {} artifacts ({} bytes), kept {}",
                opts.cache_dir(),
                report.removed,
                report.reclaimed_bytes,
                report.kept
            );
            println!(
                "note: removal includes recorded event traces (no manifest references \
                 them); they re-record on next use"
            );
            Ok(())
        }
        "migrate" => {
            let report = cbsp_store::migrate_store(&store).map_err(|e| e.to_string())?;
            println!(
                "migrate {}: {} traces and {} slice manifests rewritten as blobs, {} skipped",
                opts.cache_dir(),
                report.traces,
                report.slice_manifests,
                report.skipped
            );
            if report.skipped > 0 {
                println!(
                    "note: skipped envelopes failed to decode; they repair on next use \
                     or fall to gc"
                );
            }
            Ok(())
        }
        other => Err(format!("unknown cache action {other} (stats|gc|migrate)")),
    }
}

/// `cbsp serve [--addr A] [--threads N] [--max-inflight N]
/// [--cache-dir D] [--timeout-ms N] [--shard-id N]
/// [--cluster N] [--shard-map FILE] [--worker-threads N]
/// [--health-interval-ms N]` — run the query daemon, alone or as a
/// sharded cluster.
///
/// Serves the pipeline from warm state (store handle, trace cache) over
/// newline-delimited JSON on TCP, with `GET /healthz` and
/// `GET /metrics` answered on the same port. Blocks until a client
/// sends `server.shutdown`, then drains admitted work and exits. See
/// `docs/PROTOCOL.md` for the wire format.
///
/// With `--cluster N` (or `--shard-map FILE`) the process becomes a
/// router in front of N workers instead: each worker is a full daemon
/// with its own store shard under `<cache-dir>/shard-i`, requests are
/// placed by their map-stage content digest, and the router
/// health-checks, retries, fails over, and restarts workers. With
/// `--shard-map FILE` the workers are adopted from the file's
/// addresses rather than spawned. `--shard-id N` tags a standalone
/// daemon as shard N of an externally assembled fleet (surfaced in
/// its `/healthz`).
pub fn serve(opts: &Opts) -> Result<(), String> {
    let cluster_workers: usize = opts.flag_or("cluster", 0usize)?;
    if cluster_workers > 0 || opts.flag("shard-map").is_some() {
        return serve_cluster(opts, cluster_workers);
    }
    let shard_id = match opts.flag("shard-id") {
        None => None,
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("bad value for --shard-id: {v}"))?,
        ),
    };
    let config = cbsp_serve::ServeConfig {
        addr: opts.flag("addr").unwrap_or("127.0.0.1:4650").to_string(),
        threads: opts.threads()?,
        max_inflight: opts.flag_or("max-inflight", 64usize)?,
        cache_dir: std::path::PathBuf::from(opts.cache_dir()),
        default_timeout_ms: opts.flag_or("timeout-ms", 30_000u64)?,
        shard_id,
        ..cbsp_serve::ServeConfig::default()
    };
    if config.max_inflight == 0 {
        return Err("--max-inflight must be > 0".into());
    }
    let server = cbsp_serve::Server::start(config)?;
    println!("cbsp-serve listening on {}", server.addr());
    println!("  NDJSON protocol + GET /healthz, GET /metrics (docs/PROTOCOL.md)");
    println!("  stop with: {{\"method\":\"server.shutdown\"}}");
    server.wait()?;
    println!("drained; bye");
    Ok(())
}

/// The `--cluster` / `--shard-map` arm of [`serve`]: start a router
/// and its worker fleet, print the topology, and block until drained.
fn serve_cluster(opts: &Opts, workers: usize) -> Result<(), String> {
    let adopt: Vec<String> = match opts.flag("shard-map") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading shard map {path}: {e}"))?;
            let map = cbsp_cluster::ShardMap::from_json(&text).map_err(|e| format!("{e}"))?;
            if workers > 0 && workers != map.shards.len() {
                return Err(format!(
                    "--cluster {workers} disagrees with {} shards in {path}",
                    map.shards.len()
                ));
            }
            map.shards.into_iter().map(|s| s.addr).collect()
        }
        None => Vec::new(),
    };
    let config = cbsp_cluster::ClusterConfig {
        addr: opts.flag("addr").unwrap_or("127.0.0.1:4650").to_string(),
        workers: workers.max(1),
        adopt,
        cache_dir: std::path::PathBuf::from(opts.cache_dir()),
        worker_threads: opts.flag_or("worker-threads", opts.threads()?)?,
        worker_max_inflight: opts.flag_or("max-inflight", 64usize)?,
        default_timeout_ms: opts.flag_or("timeout-ms", 30_000u64)?,
        health_interval_ms: opts.flag_or("health-interval-ms", 250u64)?,
        ..cbsp_cluster::ClusterConfig::default()
    };
    if config.worker_max_inflight == 0 {
        return Err("--max-inflight must be > 0".into());
    }
    let cluster = cbsp_cluster::Cluster::start(config)?;
    println!("cbsp-cluster routing on {}", cluster.addr());
    for entry in cluster.shard_map().shards {
        println!(
            "  shard {} -> {} ({})",
            entry.shard,
            entry.addr,
            if entry.spawned { "spawned" } else { "adopted" }
        );
    }
    println!("  NDJSON protocol + GET /healthz, GET /metrics (docs/PROTOCOL.md)");
    println!("  stop with: {{\"method\":\"server.shutdown\"}}");
    cluster.wait()?;
    println!("drained; bye");
    Ok(())
}
