//! `cbsp` — command-line tools for cross-binary simulation points.
//!
//! Mirrors the paper's tool-chain stages as shell commands:
//!
//! ```text
//! cbsp list                                      # the benchmark suite
//! cbsp compile gcc --target 32o --scale ref      # source -> binary (JSON)
//! cbsp inspect gcc-32o.json                      # symbols, loops, layout
//! cbsp profile gcc-32o.json --interval 100000    # binary -> .bb BBV profile
//! cbsp simpoint gcc-32o.bb --max-k 10            # .bb -> phases + points
//! cbsp perbinary gcc-32o.json                    # classic SimPoint regions
//! cbsp cross gcc --scale ref --out-dir out/      # the full 6-step pipeline
//! cbsp simulate out/gcc-32o.json \
//!      --regions out/gcc-32o.pinpoints.json --full 1
//! ```

mod commands;
mod opts;

use opts::Opts;

const USAGE: &str = "\
cbsp — cross-binary simulation point tools

usage: cbsp <command> [args]

commands:
  list                         list the benchmark suite
  compile <bench>              compile a benchmark to a binary JSON
      [--target 32u|32o|64u|64o] [--scale test|train|ref] [--out FILE]
  inspect <binary.json>        show symbols, loops, and layout
      [--code 1]                 (also print the lowered code)
  hot <binary.json>            hottest procedures by instruction share
      [--scale S] [--top N]
  source <bench>               pseudo-C listing of a benchmark's source
  markers <binary.json>        software-phase-marker analysis
      [--scale S] [--interval N] [--top N]
  profile <binary.json>        collect a fixed-length-interval BBV profile (.bb)
      [--interval N] [--scale S] [--out FILE.bb]
  simpoint <profile.bb>        run SimPoint clustering on a .bb profile
      [--max-k K] [--dims D] [--theta T] [--out FILE.json]
  perbinary <binary.json>      classic per-binary SimPoint -> region file
      [--interval N] [--scale S] [--out FILE]
  cross <bench>                cross-binary pipeline over all four binaries
      [--interval N] [--scale S] [--threads N] [--out-dir DIR]
      [--estimator bbv|bbv+mav|early|stratified]
      [--fuzzy-map[=T]]          similarity fallback when exact marker
                                 mapping fails (acceptance threshold T,
                                 default 0.6; see docs/MAPPING.md)
      [--cache-dir DIR] [--no-cache 1] [--refresh 1]
                                 (each estimator lane caches under its
                                 own store namespace; fuzzy runs cache
                                 under @fuzzy-suffixed namespaces)
  simulate <binary.json>       simulate the regions of a PinPoints file
      --regions FILE [--full 1] [--scale S]
  estimate <bench>             true vs SimPoint-estimated CPI per binary
      [--interval N] [--scale S] [--threads N]
      [--estimator bbv|bbv+mav|early|stratified]
      [--cache-dir DIR] [--no-cache 1] [--refresh 1]
                                 (reads per-simpoint trace slices; set
                                 CBSP_NO_TRACE_SLICES=1 to force full
                                 in-context replays; stratified also
                                 reports a confidence half-width)
  cache <stats|gc|migrate>     inspect, garbage-collect, or migrate the
      [--cache-dir DIR]          artifact store (stats splits pipeline stages
                                 from the trace cache and reports per-format
                                 json/blob populations; gc keeps
                                 manifest-referenced stage artifacts and
                                 evicts recorded traces — they re-record on
                                 next use; migrate rewrites legacy JSON trace
                                 envelopes as binary blobs)
  serve                        run the simulation-point query daemon
      [--addr HOST:PORT] [--threads N] [--max-inflight N]
      [--cache-dir DIR] [--timeout-ms N] [--shard-id N]
                                 (NDJSON over TCP plus GET /healthz and
                                 GET /metrics; see docs/PROTOCOL.md)
      [--cluster N]              route across N spawned workers, each with
                                 its own store shard (digest routing, health
                                 checks, failover; docs/PROTOCOL.md)
      [--shard-map FILE]         adopt externally started workers from a
                                 shard-map JSON file instead of spawning
      [--worker-threads N] [--health-interval-ms N]

observability (any command):
  --trace-out FILE             write a Chrome trace-event JSON of the run
                               (load in chrome://tracing or ui.perfetto.dev)
  --metrics-json FILE          write a flat counters/gauges/span snapshot
";

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };
    let opts = match Opts::parse(args) {
        Ok(o) => o,
        Err(e) => fail(&e),
    };
    opts.enable_tracing();
    let result = match command.as_str() {
        "list" => commands::list(&opts),
        "compile" => commands::compile_cmd(&opts),
        "inspect" => commands::inspect(&opts),
        "hot" => commands::hot(&opts),
        "source" => commands::source(&opts),
        "markers" => commands::markers(&opts),
        "profile" => commands::profile(&opts),
        "simpoint" => commands::simpoint(&opts),
        "perbinary" => commands::perbinary(&opts),
        "cross" => commands::cross(&opts),
        "simulate" => commands::simulate(&opts),
        "estimate" => commands::estimate(&opts),
        "cache" => commands::cache(&opts),
        "serve" => commands::serve(&opts),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other}\n\n{USAGE}")),
    };
    if let Err(e) = result.and_then(|()| opts.export_tracing()) {
        fail(&e);
    }
}

fn fail(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}
