//! Offline, API-compatible subset of `serde` for this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small serde surface it actually uses: the
//! `Serialize`/`Deserialize` traits, their derive macros, and enough
//! primitive/container impls for the project's data types. Instead of
//! serde's visitor-based zero-copy data model, values pass through an
//! owned JSON-like [`Value`] tree — ample for the artifact files and
//! region files this project exchanges, and byte-compatible with the
//! JSON conventions of real serde (externally tagged enums, transparent
//! newtypes), so swapping the real crates back in is a manifest change.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A parsed self-describing value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A negative integer (always < 0; non-negatives use [`Value::UInt`]).
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as an object's key/value list, if it is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn serialize_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn deserialize_value(value: &Value) -> Result<Self, Error>;

    /// Called when a struct field of this type is absent from its
    /// object. Errors by default; `Option<T>` treats absence as `None`.
    fn deserialize_missing(field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

/// Deserialization helpers, mirroring `serde::de`.
pub mod de {
    /// Marker for types deserializable without borrowing from the
    /// input. Every type in this model is owned, so this is a blanket
    /// alias for [`crate::Deserialize`].
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}

    pub use crate::Error;
}

/// Serialization helpers, mirroring `serde::ser`.
pub mod ser {
    pub use crate::Error;
}

/// Support code used by the derive expansion. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Error, Value};

    /// Looks up a key in an object's pair list.
    pub fn get<'a>(pairs: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Error for an unexpected value shape while deserializing `ty`.
    pub fn unexpected(ty: &str, value: &Value) -> Error {
        Error::custom(format!("expected {ty}, found {}", value.kind()))
    }

    /// Error for an unknown enum variant tag.
    pub fn unknown_variant(ty: &str, tag: &str) -> Error {
        Error::custom(format!("unknown variant `{tag}` of {ty}"))
    }

    /// Fetches element `i` of a tuple-variant payload array.
    pub fn tuple_elem<'a>(ty: &str, items: &'a [Value], i: usize) -> Result<&'a Value, Error> {
        items
            .get(i)
            .ok_or_else(|| Error::custom(format!("{ty}: tuple payload too short at index {i}")))
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range"))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range"))),
                    other => Err(__private::unexpected("unsigned integer", other)),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}
impl Deserialize for usize {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        u64::deserialize_value(value).and_then(|n| {
            usize::try_from(n).map_err(|_| Error::custom(format!("integer {n} out of range")))
        })
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = i64::from(*self);
                if v < 0 { Value::Int(v) } else { Value::UInt(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range"))),
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range"))),
                    other => Err(__private::unexpected("integer", other)),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn serialize_value(&self) -> Value {
        (*self as i64).serialize_value()
    }
}
impl Deserialize for isize {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        i64::deserialize_value(value).and_then(|n| {
            isize::try_from(n).map_err(|_| Error::custom(format!("integer {n} out of range")))
        })
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(__private::unexpected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        f64::deserialize_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(__private::unexpected("bool", other)),
        }
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(__private::unexpected("single-character string", other)),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(__private::unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(__private::unexpected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.serialize_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }

    fn deserialize_missing(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        T::deserialize_value(value).map(Box::new)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
                .collect(),
            other => Err(__private::unexpected("object", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                const LEN: usize = [$($idx),+].len();
                match value {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::deserialize_value(&items[$idx])?,)+))
                    }
                    other => Err(__private::unexpected("tuple array", other)),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
