//! Derive macros for the workspace's offline serde subset.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are
//! unavailable; instead the derive input is parsed directly from
//! [`proc_macro::TokenTree`]s. Supported shapes cover everything this
//! workspace derives: non-generic structs (named, tuple, unit) and
//! enums whose variants are unit, tuple, or struct-like. Generated
//! impls target the `serde::Serialize` / `serde::Deserialize` traits of
//! the vendored `serde` crate and follow real serde's JSON conventions
//! (externally tagged enums, transparent newtype structs).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

/// The parsed shape of the deriving type.
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    gen_serialize(&input)
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    gen_deserialize(&input)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let kw = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde derive (vendored): generic type `{name}` is not supported");
        }
    }
    let shape = match kw.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("unexpected struct body: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unexpected enum body: {other:?}"),
        },
        other => panic!("cannot derive for `{other}`"),
    };
    Input { name, shape }
}

/// Skips leading `#[...]` attributes and a `pub` / `pub(...)`
/// visibility qualifier.
fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected field name, found {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(name);
        skip_type_until_comma(&mut tokens);
    }
    fields
}

/// Consumes type tokens up to (and including) the next top-level comma.
/// Tracks `<`/`>` nesting; bracket/paren groups arrive pre-grouped.
fn skip_type_until_comma(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut angle_depth = 0i32;
    for tt in tokens.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Counts the fields of a tuple struct/variant payload.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut count = 0usize;
    loop {
        skip_attrs_and_vis(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        count += 1;
        skip_type_until_comma(&mut tokens);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected variant name, found {other:?}"),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream());
                tokens.next();
                VariantFields::Named(named)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                VariantFields::Tuple(n)
            }
            _ => VariantFields::Unit,
        };
        // Consume a trailing comma, if any (explicit discriminants are
        // not supported and would trip the panic above on `=`).
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == ',' {
                tokens.next();
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from("let mut pairs = ::std::vec::Vec::new();\n");
            for f in fields {
                let _ = writeln!(
                    s,
                    "pairs.push((::std::string::String::from(\"{f}\"), \
                     serde::Serialize::serialize_value(&self.{f})));"
                );
            }
            s.push_str("serde::Value::Object(pairs)");
            s
        }
        Shape::TupleStruct(1) => "serde::Serialize::serialize_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        let _ = writeln!(
                            s,
                            "{name}::{vn} => serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        );
                    }
                    VariantFields::Tuple(1) => {
                        let _ = writeln!(
                            s,
                            "{name}::{vn}(f0) => serde::Value::Object(vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             serde::Serialize::serialize_value(f0))]),"
                        );
                    }
                    VariantFields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("serde::Serialize::serialize_value({b})"))
                            .collect();
                        let _ = writeln!(
                            s,
                            "{name}::{vn}({}) => serde::Value::Object(vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             serde::Value::Array(vec![{}]))]),",
                            binders.join(", "),
                            items.join(", ")
                        );
                    }
                    VariantFields::Named(fields) => {
                        let binders = fields.join(", ");
                        let mut inner = String::from("let mut pairs = ::std::vec::Vec::new();\n");
                        for f in fields {
                            let _ = writeln!(
                                inner,
                                "pairs.push((::std::string::String::from(\"{f}\"), \
                                 serde::Serialize::serialize_value({f})));"
                            );
                        }
                        let _ = writeln!(
                            s,
                            "{name}::{vn} {{ {binders} }} => {{ {inner} \
                             serde::Value::Object(vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             serde::Value::Object(pairs))]) }},"
                        );
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let mut s = format!(
                "let pairs = value.as_object().ok_or_else(|| \
                 serde::__private::unexpected(\"struct {name}\", value))?;\n\
                 let _ = pairs;\n"
            );
            let mut ctor = String::new();
            for f in fields {
                let _ = writeln!(
                    ctor,
                    "{f}: match serde::__private::get(pairs, \"{f}\") {{\n\
                         Some(v) => serde::Deserialize::deserialize_value(v)?,\n\
                         None => serde::Deserialize::deserialize_missing(\"{f}\")?,\n\
                     }},"
                );
            }
            let _ = write!(s, "::std::result::Result::Ok({name} {{ {ctor} }})");
            s
        }
        Shape::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(serde::Deserialize::deserialize_value(value)?))"
        ),
        Shape::TupleStruct(n) => {
            let mut s = format!(
                "let items = value.as_array().ok_or_else(|| \
                 serde::__private::unexpected(\"tuple struct {name}\", value))?;\n\
                 if items.len() != {n} {{ return ::std::result::Result::Err(\
                 serde::Error::custom(\"wrong tuple length for {name}\")); }}\n"
            );
            let args: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::deserialize_value(&items[{i}])?"))
                .collect();
            let _ = write!(s, "::std::result::Result::Ok({name}({}))", args.join(", "));
            s
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        let _ = writeln!(
                            unit_arms,
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                        );
                    }
                    VariantFields::Tuple(1) => {
                        let _ = writeln!(
                            data_arms,
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             serde::Deserialize::deserialize_value(inner)?)),"
                        );
                    }
                    VariantFields::Tuple(n) => {
                        let args: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "serde::Deserialize::deserialize_value(\
                                     serde::__private::tuple_elem(\"{name}\", items, {i})?)?"
                                )
                            })
                            .collect();
                        let _ = writeln!(
                            data_arms,
                            "\"{vn}\" => {{\n\
                                 let items = inner.as_array().ok_or_else(|| \
                                 serde::__private::unexpected(\"{name}::{vn} payload\", inner))?;\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n\
                             }},",
                            args.join(", ")
                        );
                    }
                    VariantFields::Named(fields) => {
                        let mut ctor = String::new();
                        for f in fields {
                            let _ = writeln!(
                                ctor,
                                "{f}: match serde::__private::get(fields, \"{f}\") {{\n\
                                     Some(v) => serde::Deserialize::deserialize_value(v)?,\n\
                                     None => serde::Deserialize::deserialize_missing(\"{f}\")?,\n\
                                 }},"
                            );
                        }
                        let _ = writeln!(
                            data_arms,
                            "\"{vn}\" => {{\n\
                                 let fields = inner.as_object().ok_or_else(|| \
                                 serde::__private::unexpected(\"{name}::{vn} payload\", inner))?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{ {ctor} }})\n\
                             }},"
                        );
                    }
                }
            }
            format!(
                "match value {{\n\
                     serde::Value::Str(tag) => match tag.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(\
                             serde::__private::unknown_variant(\"{name}\", other)),\n\
                     }},\n\
                     serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, inner) = &pairs[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {data_arms}\n\
                             other => ::std::result::Result::Err(\
                                 serde::__private::unknown_variant(\"{name}\", other)),\n\
                         }}\n\
                     }},\n\
                     other => ::std::result::Result::Err(\
                         serde::__private::unexpected(\"enum {name}\", other)),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{\n\
             fn deserialize_value(value: &serde::Value) -> \
                 ::std::result::Result<Self, serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
