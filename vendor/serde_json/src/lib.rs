//! Offline JSON front end for the workspace's vendored `serde` subset.
//!
//! Implements the pieces of the `serde_json` API this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`],
//! [`from_value`], and the [`Value`] re-export. Numbers round-trip:
//! floats are emitted with Rust's shortest-representation `Display`,
//! which parses back to the identical bit pattern (the behaviour the
//! real crate's `float_roundtrip` feature guarantees).

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;

/// Errors from JSON (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a human-readable, two-space-indented JSON
/// string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: serde::de::DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::deserialize_value(&value).map_err(Error::from)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Reconstructs a `T` from a [`Value`] tree.
pub fn from_value<T: serde::de::DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::deserialize_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::UInt(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Emits a float with Rust's shortest round-trip representation,
/// normalized so it still reads back as a float when fractionless
/// (serde_json's convention: `1.0`, not `1`). Non-finite values have no
/// JSON form; like real serde_json's `Value` printer they become
/// `null`.
fn write_float(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{x}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("bad literal at offset {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("bad literal at offset {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("bad literal at offset {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected `{}` at offset {}",
                b as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("bad \\u code point"))?;
                            s.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(rest) = text.strip_prefix('-') {
            rest.parse::<i64>()
                .map(|n| Value::Int(-n))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}
