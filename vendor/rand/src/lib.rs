//! Offline, API-compatible subset of `rand` 0.8 for this workspace.
//!
//! Provides [`rngs::StdRng`], [`Rng`], and [`SeedableRng`] with the
//! `gen_range`/`gen` surface the workspace uses. The generator is
//! xoshiro256** seeded through SplitMix64 — statistically strong and
//! deterministic per seed, though its streams differ from the real
//! crate's ChaCha12-based `StdRng` (all in-repo consumers only rely on
//! determinism, not on specific streams).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Random number generator core: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Samples a value from the standard distribution of `T`.
    fn gen<T: distributions::Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;

    /// Creates a generator from OS entropy — here, from the system
    /// clock (the workspace never uses this; present for completeness).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0x9E37_79B9, |d| d.subsec_nanos());
        Self::seed_from_u64(u64::from(nanos) ^ 0xA076_1D64_78BD_642F)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro
            // authors for seeding from narrow state.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions and range sampling, mirroring `rand::distributions`.
pub mod distributions {
    use super::Rng;

    /// The standard distribution of a type (`rng.gen::<T>()`).
    pub trait Standard: Sized {
        /// Draws one value.
        fn sample<R: Rng>(rng: &mut R) -> Self;
    }

    impl Standard for bool {
        fn sample<R: Rng>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard for u64 {
        fn sample<R: Rng>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl Standard for u32 {
        fn sample<R: Rng>(rng: &mut R) -> Self {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Standard for f64 {
        fn sample<R: Rng>(rng: &mut R) -> Self {
            // 53 uniform bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Uniform range sampling, mirroring
    /// `rand::distributions::uniform`.
    pub mod uniform {
        use super::super::{Range, RangeInclusive, Rng};

        /// Ranges from which a single value can be sampled.
        pub trait SampleRange<T> {
            /// Draws one value uniformly from the range.
            fn sample_single<R: Rng>(self, rng: &mut R) -> T;
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty range");
                        let span = (self.end as u128 - self.start as u128) as u64;
                        // Multiply-shift bounded sampling (Lemire); the
                        // slight bias at 2^64 spans is irrelevant here.
                        let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                        (self.start as i128 + hi as i128) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range");
                        let span = (hi as i128 - lo as i128 + 1) as u128;
                        let draw = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                        (lo as i128 + draw) as $t
                    }
                }
            )*};
        }
        impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<f64> for RangeInclusive<f64> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> f64 {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                lo + unit * (hi - lo)
            }
        }
    }
}

/// Convenient glob-import surface, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}
