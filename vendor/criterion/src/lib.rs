//! Offline, API-compatible subset of `criterion` for this workspace.
//!
//! Provides the harness surface the repo's benches use — groups,
//! `iter`/`iter_batched`, throughput annotation, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — measuring mean
//! wall-clock time per iteration. There is no statistical analysis,
//! warm-up calibration, or HTML report; each benchmark prints one line.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier; on stable Rust this is `std::hint::black_box`.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. All variants behave the
/// same here: setup runs untimed before every routine invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Inputs sized per measured batch.
    PerIteration,
}

/// Units-of-work annotation for a group (reported, not analyzed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().id, 10, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates the units of work per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (reporting happens per benchmark; this exists for
    /// API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; records per-iteration timing.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

/// Per-benchmark wall-clock budget: stop sampling once exceeded so
/// heavyweight benches don't dominate `cargo bench` runtime.
const BUDGET: Duration = Duration::from_millis(250);

impl Bencher {
    /// Times `f` over up to `sample_size` iterations (after one untimed
    /// warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let started = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.total += t0.elapsed();
            self.iters += 1;
            if started.elapsed() > BUDGET {
                break;
            }
        }
    }

    /// Times `routine` with a fresh untimed `setup` product per
    /// iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let started = Instant::now();
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
            if started.elapsed() > BUDGET {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{id:<48} (no timed iterations)");
        return;
    }
    let mean_ns = bencher.total.as_nanos() as f64 / bencher.iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.1} Melem/s", n as f64 / mean_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:>12.1} MiB/s",
                n as f64 / mean_ns * 1e9 / (1024.0 * 1024.0) / 1e6
            )
        }
        None => String::new(),
    };
    println!(
        "{id:<48} {:>14} ns/iter  ({} iters){rate}",
        format_ns(mean_ns),
        bencher.iters,
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else {
        format!("{:.0}", ns)
    }
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Harness flags (e.g. `--bench` from `cargo bench`) carry
            // no meaning for this minimal runner.
            $($group();)+
        }
    };
}
