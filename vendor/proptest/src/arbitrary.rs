//! `any::<T>()` support: canonical strategies per type.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`: `any::<u64>()`, `any::<bool>()`, ….
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        // Finite floats across a wide dynamic range (uniform bit
        // patterns would mostly be astronomically large or NaN).
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exponent = (rng.below(613) as i32 - 306) as f64;
        mantissa * 10f64.powf(exponent)
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated labels readable.
        (0x20 + rng.below(0x5F) as u32 as u8) as char
    }
}
