//! Deterministic test-case generator state and per-test configuration.

use rand::{rngs::StdRng, Rng, RngCore, SeedableRng};

/// Configuration for a `proptest!` block, mirroring
/// `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections before the test is abandoned.
    pub max_local_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_local_rejects: 65_536,
        }
    }
}

/// Marker returned by `prop_assume!` when a generated case is
/// discarded.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;

/// The generator driving all strategies: deterministic per test name so
/// failures reproduce across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A generator seeded stably from `name` (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut seed: u64 = 0xCBF2_9CE4_8422_2325;
        for &b in name.as_bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform index in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples from a `rand`-style range (used by the numeric strategy
    /// impls).
    pub fn sample_range<T, R: rand::distributions::uniform::SampleRange<T>>(
        &mut self,
        range: R,
    ) -> T {
        self.inner.gen_range(range)
    }
}
