//! Offline, API-compatible subset of `proptest` for this workspace.
//!
//! Implements the property-testing surface the repo's tests use —
//! strategies with `prop_map` / `prop_flat_map` / `prop_filter` /
//! `prop_recursive`, collection and tuple strategies, `prop_oneof!`,
//! and the `proptest!` test macro — on a deterministic generator.
//! Failing cases are reported by panicking with the generated inputs'
//! `Debug` form; there is no shrinking (a failing case prints as-is).

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// `prop::collection::vec(...)`-style paths.
    pub use crate as prop;
}

/// `prop_oneof![a, b, c]` / `prop_oneof![2 => a, 1 => b]`: a strategy
/// choosing among alternatives, optionally weighted.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Discards the current case (drawing a fresh one) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::Rejected> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err(_) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.max_local_rejects,
                            "too many prop_assume! rejections ({rejected}) in {}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
        $crate::__proptest_each! { @cfg($cfg) $($rest)* }
    };
}
