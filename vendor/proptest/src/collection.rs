//! Collection strategies (`prop::collection::vec`, `btree_set`).

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A collection-size specification: an exact size or a range of sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo >= self.hi_inclusive {
            return self.lo;
        }
        let span = (self.hi_inclusive - self.lo + 1) as u64;
        self.lo + rng.below(span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// A `Vec` of values from `element`, with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `BTreeSet` of values from `element`; sizes above the number of
/// distinct generatable values saturate rather than loop forever.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < target.saturating_mul(20) + 100 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
