//! Value-generation strategies: the core [`Strategy`] trait and its
//! combinators.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree or shrinking: `generate`
/// directly yields one value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `pred`, retrying with fresh
    /// draws.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Builds a recursive strategy: `self` is the leaf case and
    /// `recurse` wraps an inner strategy one level deeper, up to
    /// `depth` levels.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let leaf = self.boxed();
        Recursive {
            leaf,
            depth,
            recurse: Arc::new(move |inner| recurse(inner).boxed()),
        }
    }

    /// Type-erases the strategy for heterogeneous composition.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

// Strategies compose by reference too (`&strat` in macro expansions).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    leaf: BoxedStrategy<T>,
    depth: u32,
    recurse: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            leaf: self.leaf.clone(),
            depth: self.depth,
            recurse: Arc::clone(&self.recurse),
        }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        // Build `depth` nested levels, mixing the leaf back in at each
        // level so generated structures have varied depth.
        let mut strat = self.leaf.clone();
        for _ in 0..self.depth {
            let deeper = (self.recurse)(strat);
            strat = Union::new(vec![(1, self.leaf.clone()), (2, deeper)]).boxed();
        }
        strat.generate(rng)
    }
}

/// A weighted choice among boxed alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "empty union");
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "union weights sum to zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (weight, strat) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: numeric ranges and tuples
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
