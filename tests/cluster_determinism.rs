//! Cluster determinism integration tests: the routed fleet is
//! observationally identical to a single daemon.
//!
//! The tentpole claim of `cbsp-cluster` is that sharding is invisible
//! to clients — a response served through a router over 2 or 4 workers
//! is byte-for-byte what a plain single-process `cbsp serve` would
//! have sent. This file checks that claim across every digest-keyed
//! method, and property-tests the shard-map document the router's
//! topology durability rests on.
//!
//! Each topology is primed and then restarted before its responses are
//! recorded: `pipeline.run`/`estimate.cpi` responses embed the store
//! hits/misses of the run that computed the result, which depend on
//! what the store already held. After a restart over warm stores every
//! (re)computation sees a fully-populated store, making the responses
//! a deterministic function of the request alone and therefore
//! comparable across topologies (the cluster bench lane measures under
//! the same discipline).

use cbsp_cluster::{Cluster, ClusterConfig, ShardMap, ShardMapError};
use cbsp_serve::{ServeConfig, Server};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cbsp-determinism-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every digest-keyed request shape the protocol exposes, over a small
/// working set of distinct intervals, plus the router-answered `ping`.
fn request_set() -> Vec<String> {
    let mut frames = vec![r#"{"id": 1, "method": "ping"}"#.to_string()];
    for interval in (0..5u64).map(|i| 20_000 + i * 13) {
        let params =
            format!(r#""params":{{"benchmark":"gzip","scale":"test","interval":{interval}}}"#);
        frames.push(format!(
            r#"{{"id":{interval},"method":"pipeline.run",{params}}}"#
        ));
        frames.push(format!(
            r#"{{"id":{interval},"method":"pipeline.run","params":{{"benchmark":"gzip","scale":"test","interval":{interval},"detail":"full"}}}}"#
        ));
        frames.push(format!(
            r#"{{"id":{interval},"method":"estimate.cpi",{params}}}"#
        ));
        frames.push(format!(
            r#"{{"id":{interval},"method":"simpoints.get",{params}}}"#
        ));
    }
    frames
}

enum Topology {
    Single(Server),
    Fleet(Cluster),
}

impl Topology {
    fn start(workers: usize, dir: &Path) -> Topology {
        if workers == 1 {
            Topology::Single(
                Server::start(ServeConfig {
                    addr: "127.0.0.1:0".to_string(),
                    threads: 2,
                    cache_dir: dir.to_path_buf(),
                    default_timeout_ms: 300_000,
                    ..ServeConfig::default()
                })
                .expect("server starts"),
            )
        } else {
            Topology::Fleet(
                Cluster::start(ClusterConfig {
                    addr: "127.0.0.1:0".to_string(),
                    workers,
                    worker_threads: 2,
                    cache_dir: dir.to_path_buf(),
                    default_timeout_ms: 300_000,
                    ..ClusterConfig::default()
                })
                .expect("cluster starts"),
            )
        }
    }

    fn addr(&self) -> SocketAddr {
        match self {
            Topology::Single(server) => server.addr(),
            Topology::Fleet(cluster) => cluster.addr(),
        }
    }

    fn stop(self) {
        match self {
            Topology::Single(server) => {
                server.shutdown();
                server.wait().expect("server drains");
            }
            Topology::Fleet(cluster) => {
                cluster.shutdown();
                cluster.wait().expect("cluster drains");
            }
        }
    }
}

/// Sends every frame over one connection, returning responses keyed by
/// the request frame.
fn collect(addr: SocketAddr, frames: &[String]) -> BTreeMap<String, String> {
    let stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(300)))
        .expect("timeout set");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    frames
        .iter()
        .map(|frame| {
            writer
                .write_all(frame.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .expect("request written");
            let mut line = String::new();
            reader.read_line(&mut line).expect("response read");
            (frame.clone(), line.trim_end().to_string())
        })
        .collect()
}

/// Primes a topology's stores, restarts it, and records the warm
/// responses to every request shape.
fn warm_responses(workers: usize, dir: &Path, frames: &[String]) -> BTreeMap<String, String> {
    let primer = Topology::start(workers, dir);
    collect(primer.addr(), frames);
    primer.stop();
    let topo = Topology::start(workers, dir);
    let responses = collect(topo.addr(), frames);
    topo.stop();
    responses
}

#[test]
fn every_method_is_byte_identical_across_1_2_and_4_workers() {
    let frames = request_set();
    let dir = temp_dir("topologies");
    let single = warm_responses(1, &dir.join("w1"), &frames);

    for (frame, response) in &single {
        assert!(
            response.contains(r#""ok":true"#),
            "reference response failed for {frame}: {response}"
        );
    }

    for workers in [2usize, 4] {
        let routed = warm_responses(workers, &dir.join(format!("w{workers}")), &frames);
        for frame in &frames {
            assert_eq!(
                routed.get(frame),
                single.get(frame),
                "{workers}-worker response diverged from the single daemon for {frame}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A structurally valid adopted-worker shard map with proptest-chosen
/// version, port layout, and per-shard spawned flags.
fn shard_map_strategy() -> impl Strategy<Value = ShardMap> {
    (
        0u64..1_000_000,
        prop::collection::vec((1024u32..65536, any::<bool>()), 1..6),
    )
        .prop_map(|(version, shards)| {
            let addrs: Vec<String> = shards
                .iter()
                .map(|(port, _)| format!("127.0.0.1:{port}"))
                .collect();
            let mut map = ShardMap::adopted(&addrs);
            map.version = version;
            for (entry, (_, spawned)) in map.shards.iter_mut().zip(&shards) {
                entry.spawned = *spawned;
                if *spawned {
                    entry.cache_dir = format!("/tmp/cbsp-shard-{}", entry.shard);
                }
            }
            map
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// Serialization is lossless: any valid map survives a JSON round
    /// trip exactly.
    #[test]
    fn shard_maps_round_trip_through_json(map in shard_map_strategy()) {
        prop_assert_eq!(map.validate(), Ok(()));
        let back = ShardMap::from_json(&map.to_json())
            .expect("valid maps deserialize");
        prop_assert_eq!(back, map);
    }

    /// Damaged documents never produce a usable map: every strict
    /// prefix of a valid document is a typed `Corrupt` error (the file
    /// was cut mid-write), and corrupting the schema field is a typed
    /// `SchemaMismatch`.
    #[test]
    fn truncated_and_corrupt_maps_are_typed_errors(
        map in shard_map_strategy(),
        cut_seed in 0usize..10_000,
    ) {
        let json = map.to_json();
        let cut = cut_seed % json.len();
        prop_assert!(matches!(
            ShardMap::from_json(&json[..cut]),
            Err(ShardMapError::Corrupt { .. })
        ), "prefix of length {} must be Corrupt", cut);

        let mut foreign = map.clone();
        foreign.schema += 1;
        prop_assert!(matches!(
            ShardMap::from_json(&foreign.to_json()),
            Err(ShardMapError::SchemaMismatch { .. })
        ));

        // Field-type damage (a string where the shard list belongs) is
        // Corrupt, not a panic.
        prop_assert!(matches!(
            ShardMap::from_json(r#"{"schema":1,"version":0,"shards":"nope"}"#),
            Err(ShardMapError::Corrupt { .. })
        ));
    }
}
