//! Property-based integration tests: randomly generated source
//! programs must uphold the cross-binary invariants the whole technique
//! rests on, for every compilation target.

use cbsp_core::{run_cross_binary, CbspConfig};
use cbsp_program::{
    compile, run, Binary, CompileTarget, Cond, Input, LoopHints, NullSink, ProgramBuilder, Scale,
    SourceProgram, TripCount,
};
use proptest::prelude::*;

/// Recipe for one statement of a random program.
#[derive(Debug, Clone)]
enum StmtSpec {
    Work(u32),
    Kernel {
        work: u32,
        seq: u32,
        removable: bool,
    },
    Loop {
        trip: TripSpec,
        hints: LoopHints,
        body: Vec<StmtSpec>,
    },
    If {
        cond: Cond,
        then_body: Vec<StmtSpec>,
        else_body: Vec<StmtSpec>,
    },
    CallHelper(u8),
}

#[derive(Debug, Clone, Copy)]
enum TripSpec {
    Fixed(u64),
    Random(u64, u64),
}

impl TripSpec {
    fn trip(self) -> TripCount {
        match self {
            TripSpec::Fixed(n) => TripCount::Fixed(n),
            TripSpec::Random(lo, hi) => TripCount::Random { lo, hi },
        }
    }
}

fn cond_strategy() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Always),
        Just(Cond::Never),
        (1u64..6).prop_map(Cond::IterLt),
        (2u64..5, 0u64..2).prop_map(|(m, r)| Cond::IterMod { m, r: r % m }),
        (1u32..4, 4u32..8).prop_map(|(num, den)| Cond::Random { num, den }),
    ]
}

fn trip_strategy() -> impl Strategy<Value = TripSpec> {
    prop_oneof![
        (1u64..8).prop_map(TripSpec::Fixed),
        (1u64..4, 4u64..9).prop_map(|(lo, hi)| TripSpec::Random(lo, hi)),
    ]
}

fn hints_strategy() -> impl Strategy<Value = LoopHints> {
    prop_oneof![
        3 => Just(LoopHints::default()),
        1 => (2u32..5).prop_map(|u| LoopHints { unroll: u, split: false }),
        1 => Just(LoopHints { unroll: 0, split: true }),
    ]
}

fn stmt_strategy() -> impl Strategy<Value = StmtSpec> {
    let leaf = prop_oneof![
        (5u32..60).prop_map(StmtSpec::Work),
        (5u32..60, 1u32..8, any::<bool>()).prop_map(|(work, seq, removable)| StmtSpec::Kernel {
            work,
            seq,
            removable
        }),
        (0u8..3).prop_map(StmtSpec::CallHelper),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                trip_strategy(),
                hints_strategy(),
                prop::collection::vec(inner.clone(), 1..4)
            )
                .prop_map(|(trip, hints, body)| StmtSpec::Loop { trip, hints, body }),
            (
                cond_strategy(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner, 0..3)
            )
                .prop_map(|(cond, then_body, else_body)| StmtSpec::If {
                    cond,
                    then_body,
                    else_body
                }),
        ]
    })
}

fn program_strategy() -> impl Strategy<Value = SourceProgram> {
    (
        prop::collection::vec(stmt_strategy(), 1..6),
        prop::collection::vec(any::<bool>(), 3), // helper inline flags
        1u64..12,                                // outer trips
    )
        .prop_map(|(stmts, inline_flags, outer)| build_program(&stmts, &inline_flags, outer))
}

fn emit(specs: &[StmtSpec], b: &mut cbsp_program::BodyBuilder<'_>, arr: cbsp_program::ArrayId) {
    for s in specs {
        match s {
            StmtSpec::Work(w) => b.work(*w),
            StmtSpec::Kernel {
                work,
                seq,
                removable,
            } => b.compute(*work, |k| {
                k.seq(arr, *seq);
                if *removable {
                    k.removable();
                }
            }),
            StmtSpec::Loop { trip, hints, body } => {
                b.loop_with(trip.trip(), *hints, |inner| emit(body, inner, arr));
            }
            StmtSpec::If {
                cond,
                then_body,
                else_body,
            } => {
                b.if_else(
                    *cond,
                    |t| emit(then_body, t, arr),
                    |e| emit(else_body, e, arr),
                );
            }
            StmtSpec::CallHelper(i) => b.call(&format!("helper{}", i % 3)),
        }
    }
}

fn build_program(stmts: &[StmtSpec], inline_flags: &[bool], outer: u64) -> SourceProgram {
    let mut b = ProgramBuilder::new("random");
    let arr = b.array_f64("data", 4096);
    b.proc("main", |p| {
        p.loop_fixed(outer, |body| emit(stmts, body, arr));
    });
    for i in 0..3u8 {
        let name = format!("helper{i}");
        let body = move |p: &mut cbsp_program::BodyBuilder<'_>| {
            p.loop_fixed(2 + u64::from(i), |inner| inner.work(10 + u32::from(i)));
        };
        if inline_flags[i as usize] {
            b.inline_proc(&name, body);
        } else {
            b.proc(&name, body);
        }
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// The foundational invariant (paper §3.2.2): semantic counts agree
    /// across every binary of the same source — procedure entries match
    /// by symbol, and total loop iterations per source loop are
    /// conserved no matter how loops were inlined, split, or unrolled.
    #[test]
    fn semantic_counts_agree_across_all_binaries(program in program_strategy()) {
        prop_assert_eq!(program.validate(), Ok(()));
        let input = Input::new("prop", 7, Scale::Test);
        let runs: Vec<(Binary, cbsp_program::ExecSummary)> = CompileTarget::ALL_FOUR
            .iter()
            .map(|&t| {
                let bin = compile(&program, t);
                let s = run(&bin, &input, &mut NullSink);
                (bin, s)
            })
            .collect();
        let (bin0, s0) = &runs[0];
        for (bin, s) in &runs[1..] {
            // Procedure entries by symbol name.
            for (i, p) in bin.procs.iter().enumerate() {
                if let Some(j) = bin0.proc_by_name(&p.name) {
                    prop_assert_eq!(s.proc_entries[i], s0.proc_entries[j.index()],
                        "proc {} count", &p.name);
                }
            }
            // Loop counts per source loop: directly comparable when
            // both binaries lowered the loop the same number of times
            // (split clones and per-site inlining duplicate instances,
            // and unrolling regroups back-branches — those cases are
            // covered by targeted unit tests instead).
            let totals = |bin: &Binary, s: &cbsp_program::ExecSummary| {
                let mut entries = std::collections::BTreeMap::new();
                let mut backs = std::collections::BTreeMap::new();
                for (i, l) in bin.loops.iter().enumerate() {
                    *entries.entry(l.ground_truth_source).or_insert(0u64) += s.loop_entries[i];
                    if l.unroll == 1 {
                        *backs.entry(l.ground_truth_source).or_insert(0u64) += s.loop_backs[i];
                    }
                }
                (entries, backs)
            };
            let (e0, b0) = totals(bin0, s0);
            let (e1, b1) = totals(bin, s);
            for (src, n1) in &e1 {
                let (c0, c1) = (clone_count(bin0, *src), clone_count(bin, *src));
                if c0 == c1 && c0 == 1 {
                    if let Some(n0) = e0.get(src) {
                        prop_assert_eq!(n1, n0, "loop {:?} entries", src);
                    }
                    if let (Some(m1), Some(m0)) = (b1.get(src), b0.get(src)) {
                        let unroll1_both = bin.loops.iter().chain(&bin0.loops)
                            .filter(|l| l.ground_truth_source == *src)
                            .all(|l| l.unroll == 1);
                        if unroll1_both {
                            prop_assert_eq!(m1, m0, "loop {:?} backs", src);
                        }
                    }
                }
            }
        }
    }

    /// Executions are bit-deterministic, and block/instruction streams
    /// partition identically between profiler and simulator slicing.
    #[test]
    fn execution_is_deterministic_and_partitions(program in program_strategy()) {
        let input = Input::new("prop", 3, Scale::Test);
        let bin = compile(&program, CompileTarget::W64_O2);
        let a = run(&bin, &input, &mut NullSink);
        let b = run(&bin, &input, &mut NullSink);
        prop_assert_eq!(&a, &b);

        if a.instructions > 2_000 {
            let intervals = cbsp_profile::profile_fli(&bin, &input, 1_000);
            let total: u64 = intervals.iter().map(|i| i.instrs).sum();
            prop_assert_eq!(total, a.instructions);
            for iv in &intervals {
                let mass: f64 = iv.bbv.iter().sum();
                prop_assert!((mass - iv.instrs as f64).abs() < 1e-6);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// The full cross-binary pipeline upholds its invariants on random
    /// programs: it either succeeds with proper weights and reachable
    /// boundaries in every binary, or (never) errors — random same-source
    /// binary sets must always be analyzable.
    #[test]
    fn cross_binary_pipeline_survives_random_programs(program in program_strategy()) {
        let input = Input::new("prop", 11, Scale::Test);
        let binaries: Vec<Binary> = CompileTarget::ALL_FOUR
            .iter()
            .map(|&t| compile(&program, t))
            .collect();
        let config = CbspConfig {
            interval_target: 500,
            ..CbspConfig::default()
        };
        let result = run_cross_binary(&binaries.iter().collect::<Vec<_>>(), &input, &config)
            .expect("same-source sets always analyzable");
        prop_assert!(result.interval_count() >= 1);
        prop_assert_eq!(result.simpoint.labels.len(), result.interval_count());
        for (b, weights) in result.weights.iter().enumerate() {
            let total: f64 = weights.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "binary {b}: {total}");
        }
        // Boundaries translate and slice every binary exactly: verified
        // by recomputing instruction totals per binary.
        for (b, bin) in binaries.iter().enumerate() {
            let full = run(bin, &input, &mut NullSink);
            let slices = cbsp_core::slice_instr_counts(bin, &input, &result.boundaries[b]);
            prop_assert_eq!(slices.iter().sum::<u64>(), full.instructions, "binary {}", b);
        }
    }
}

/// Number of lowered instances of a source loop in a binary (split
/// clones and per-site inlining both duplicate loops).
fn clone_count(bin: &Binary, src: cbsp_program::LoopId) -> u64 {
    bin.loops
        .iter()
        .filter(|l| l.ground_truth_source == src)
        .count() as u64
}
