//! Serialization integration tests: PinPoints region files and analysis
//! results round-trip through JSON, so simulation regions can be handed
//! between the profiling and simulation stages as files (the way the
//! paper's PinPoints tool chain works).

use cross_binary_simpoints::prelude::*;
use cross_binary_simpoints::profile::{RegionBound, SimRegion};

fn pipeline(
    name: &str,
) -> (
    Vec<Binary>,
    Input,
    cross_binary_simpoints::core::CrossBinaryResult,
) {
    let program = workloads::by_name(name)
        .expect("in suite")
        .build(Scale::Test);
    let input = Input::test();
    let binaries: Vec<Binary> = CompileTarget::ALL_FOUR
        .iter()
        .map(|&t| compile(&program, t))
        .collect();
    let config = CbspConfig {
        interval_target: 20_000,
        ..CbspConfig::default()
    };
    let result = run_cross_binary(&binaries.iter().collect::<Vec<_>>(), &input, &config)
        .expect("pipeline succeeds");
    (binaries, input, result)
}

#[test]
fn pinpoints_files_round_trip_through_json() {
    let (binaries, input, result) = pipeline("bzip2");
    for (b, bin) in binaries.iter().enumerate() {
        let file = result.pinpoints_for(b, bin, &input);
        assert_eq!(file.validate(), Ok(()));
        let json = serde_json::to_string_pretty(&file).expect("serializes");
        let back: PinPointsFile = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, file);
        assert_eq!(back.binary, bin.label());
    }
}

#[test]
fn per_binary_pinpoints_round_trip() {
    let (binaries, input, _) = pipeline("eon");
    let analysis = run_per_binary(&binaries[1], &input, 20_000, &SimPointConfig::default());
    let file = analysis.pinpoints(&binaries[1], &input);
    assert_eq!(file.validate(), Ok(()));
    let json = serde_json::to_string(&file).expect("serializes");
    let back: PinPointsFile = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, file);
    // FLI regions use instruction-offset bounds.
    for r in &back.regions {
        assert!(matches!(r.start, RegionBound::Instr(_)));
        assert!(matches!(r.end, RegionBound::Instr(_)));
    }
}

#[test]
fn simpoint_results_round_trip() {
    let (_, _, result) = pipeline("gzip");
    let json = serde_json::to_string(&result.simpoint).expect("serializes");
    let back: SimPointResult = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, result.simpoint);
}

#[test]
fn mappable_sets_round_trip() {
    let (_, _, result) = pipeline("fma3d");
    let json = serde_json::to_string(&result.mappable).expect("serializes");
    let back: cross_binary_simpoints::core::MappableSet =
        serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, result.mappable);
    assert!(
        back.points.iter().any(|p| p.recovered),
        "fma3d recovers inlined loops"
    );
}

#[test]
fn binaries_round_trip_through_json() {
    // Binaries themselves are serializable (useful for caching compiled
    // artifacts between tool invocations).
    let program = workloads::by_name("art")
        .expect("in suite")
        .build(Scale::Test);
    let bin = compile(&program, CompileTarget::W64_O2);
    let json = serde_json::to_string(&bin).expect("serializes");
    let back: Binary = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, bin);
    // And the deserialized binary executes identically.
    let a = cross_binary_simpoints::program::run(&bin, &Input::test(), &mut NullSink);
    let b = cross_binary_simpoints::program::run(&back, &Input::test(), &mut NullSink);
    assert_eq!(a, b);
}

#[test]
fn hand_written_region_files_validate() {
    use cross_binary_simpoints::profile::{ExecPoint, MarkerRef};
    let file = PinPointsFile {
        program: "demo".into(),
        binary: "demo-32o".into(),
        input: "ref".into(),
        interval_target: 100_000,
        regions: vec![
            SimRegion {
                phase: 0,
                weight: 0.5,
                start: RegionBound::Instr(0),
                end: RegionBound::Instr(100_000),
            },
            SimRegion {
                phase: 1,
                weight: 0.5,
                start: RegionBound::Point(ExecPoint {
                    marker: MarkerRef::LoopEntry(2),
                    count: 10,
                }),
                end: RegionBound::Point(ExecPoint {
                    marker: MarkerRef::LoopEntry(2),
                    count: 11,
                }),
            },
        ],
    };
    assert_eq!(file.validate(), Ok(()));
}
