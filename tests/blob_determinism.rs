//! On-disk-format and thread-count determinism of the sliced-trace
//! estimate path: the same CPI estimate must come back bit-identical
//! whether the store serves binary blobs or legacy JSON envelopes, and
//! whether slice prefetch fans out over 1 thread or 8 — the blob tier
//! is a faster encoding of the same artifacts, never a different
//! answer.

use cbsp_par::Pool;
use cbsp_store::{put_slices_legacy, put_trace_legacy, ArtifactStore, CpiEstimate, TraceCache};
use cross_binary_simpoints::prelude::*;
use cross_binary_simpoints::profile::{ExecPoint, MarkerRef};
use cross_binary_simpoints::program::{BlockId, Marker};
use cross_binary_simpoints::sim::{record_trace, slice_trace, MemoryConfig};
use cross_binary_simpoints::simpoint::SimPoint;
use std::path::PathBuf;

/// Counts marker executions to derive in-order [`ExecPoint`]
/// boundaries without involving the profiling pipeline.
#[derive(Default)]
struct MarkerTally(std::collections::BTreeMap<MarkerRef, u64>);

impl TraceSink for MarkerTally {
    fn on_block(&mut self, _block: BlockId, _instrs: u64) {}

    fn on_marker(&mut self, marker: Marker) {
        let r = match marker {
            Marker::ProcEntry(p) => MarkerRef::Proc(u32::from(p)),
            Marker::LoopEntry(l) => MarkerRef::LoopEntry(u32::from(l)),
            Marker::LoopBack(l) => MarkerRef::LoopBack(u32::from(l)),
        };
        *self.0.entry(r).or_insert(0) += 1;
    }
}

fn boundaries_and_points(bin: &Binary, input: &Input) -> (Vec<ExecPoint>, Vec<SimPoint>) {
    let mut tally = MarkerTally::default();
    run(bin, input, &mut tally);
    let (&marker, &execs) = tally.0.iter().max_by_key(|(_, &n)| n).expect("markers run");
    let cuts = 8.min(execs);
    let boundaries: Vec<ExecPoint> = (1..=cuts)
        .map(|i| ExecPoint {
            marker,
            count: i * execs / cuts,
        })
        .collect();
    let n = boundaries.len() + 1;
    let points = vec![
        SimPoint {
            phase: 0,
            interval: 0,
            weight: 0.5,
            share: 1.0,
            variance: 0.0,
        },
        SimPoint {
            phase: 1,
            interval: n / 2,
            weight: 0.3,
            share: 1.0,
            variance: 0.0,
        },
        SimPoint {
            phase: 2,
            interval: n - 1,
            weight: 0.2,
            share: 1.0,
            variance: 0.0,
        },
    ];
    (boundaries, points)
}

fn temp_store(tag: &str) -> (ArtifactStore, PathBuf) {
    let dir = std::env::temp_dir().join(format!("cbsp-blob-det-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (ArtifactStore::open(&dir).expect("store opens"), dir)
}

fn assert_bit_identical(reference: &CpiEstimate, other: &CpiEstimate, label: &str) {
    assert_eq!(
        reference.estimated_cpi.to_bits(),
        other.estimated_cpi.to_bits(),
        "{label}: estimated CPI differs"
    );
    assert_eq!(
        reference.true_cpi.to_bits(),
        other.true_cpi.to_bits(),
        "{label}: true CPI differs"
    );
    let bits = |e: &CpiEstimate| {
        e.interval_cpis
            .iter()
            .map(|c| c.to_bits())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        bits(reference),
        bits(other),
        "{label}: per-interval CPIs differ"
    );
    assert_eq!(reference, other, "{label}: estimate differs");
}

/// The sliced CPI estimate is bit-identical across
/// {legacy JSON, blob} × {1, 8 prefetch threads} for every binary of a
/// workload.
#[test]
fn estimates_are_identical_across_formats_and_thread_counts() {
    let prog = workloads::by_name("gzip")
        .expect("in suite")
        .build(Scale::Test);
    let input = Input::test();
    let config = MemoryConfig::table1();

    for &target in &[CompileTarget::W32_O2, CompileTarget::W64_O0] {
        let bin = compile(&prog, target);
        let (boundaries, points) = boundaries_and_points(&bin, &input);
        let selected: Vec<usize> = points.iter().map(|p| p.interval).collect();
        let n = boundaries.len() + 1;
        let label = bin.label();

        // Blob-format store: a cold estimate materializes the blobs.
        let (blob_store, blob_dir) = temp_store(&format!("blob-{target:?}"));
        let reference = TraceCache::new(Some(&blob_store))
            .estimate_cpi_sliced(&bin, &input, &config, &boundaries, &points, None, n)
            .expect("cold blob estimate");

        // Legacy-format store: the same artifacts as JSON envelopes.
        let (json_store, json_dir) = temp_store(&format!("json-{target:?}"));
        let trace = record_trace(&bin, &input);
        let sliced = slice_trace(&trace, &config, &boundaries, &selected).expect("slices");
        put_trace_legacy(&json_store, &bin, &input, &trace).expect("legacy trace writes");
        put_slices_legacy(
            &json_store,
            &bin,
            &input,
            &config,
            &boundaries,
            &selected,
            &sliced,
        )
        .expect("legacy slices write");

        for threads in [1usize, 8] {
            let pool = Pool::new(threads);
            for (format, store) in [("blob", &blob_store), ("legacy", &json_store)] {
                let cache = TraceCache::new(Some(store))
                    .without_migration()
                    .with_prefetch(pool);
                let estimate = cache
                    .estimate_cpi_sliced(&bin, &input, &config, &boundaries, &points, None, n)
                    .expect("store-warm estimate");
                assert_bit_identical(
                    &reference,
                    &estimate,
                    &format!("{label} / {format} / {threads} threads"),
                );
            }
        }
        let _ = std::fs::remove_dir_all(&blob_dir);
        let _ = std::fs::remove_dir_all(&json_dir);
    }
}

/// Read-through migration does not change the answer: estimating from
/// a legacy store with migration enabled rewrites the artifacts as
/// blobs, and the post-migration store still serves the identical
/// estimate.
#[test]
fn migration_preserves_the_estimate() {
    let prog = workloads::by_name("swim")
        .expect("in suite")
        .build(Scale::Test);
    let bin = compile(&prog, CompileTarget::W32_O2);
    let input = Input::test();
    let config = MemoryConfig::table1();
    let (boundaries, points) = boundaries_and_points(&bin, &input);
    let selected: Vec<usize> = points.iter().map(|p| p.interval).collect();
    let n = boundaries.len() + 1;

    let (store, dir) = temp_store("migrate");
    let trace = record_trace(&bin, &input);
    let sliced = slice_trace(&trace, &config, &boundaries, &selected).expect("slices");
    put_trace_legacy(&store, &bin, &input, &trace).expect("legacy trace writes");
    put_slices_legacy(
        &store,
        &bin,
        &input,
        &config,
        &boundaries,
        &selected,
        &sliced,
    )
    .expect("legacy slices write");

    // First read migrates in place (the default), second reads blobs.
    let migrating = TraceCache::new(Some(&store))
        .estimate_cpi_sliced(&bin, &input, &config, &boundaries, &points, None, n)
        .expect("migrating estimate");
    let post = TraceCache::new(Some(&store))
        .estimate_cpi_sliced(&bin, &input, &config, &boundaries, &points, None, n)
        .expect("post-migration estimate");
    assert_bit_identical(&migrating, &post, "legacy vs migrated store");
    let _ = std::fs::remove_dir_all(&dir);
}
