//! Fuzzy cross-binary mapping: the marker-loss fallback's two load-
//! bearing guarantees, checked end to end.
//!
//! 1. **It works when markers vanish.** Binaries compiled with the
//!    marker-destroying preset (aggressive inlining + unconditional
//!    loop splitting — the paper's `applu` failure mode, §5.1) share
//!    (almost) no mappable markers with a default-compiled primary,
//!    yet the fuzzy lane must still map ≥ 80% of simulation points
//!    with a reported confidence.
//! 2. **It is provably inert otherwise.** When every marker maps
//!    exactly, enabling fuzzy mapping must not change a single byte of
//!    the result beyond the all-`Exact` mapping records; and the whole
//!    fuzzy lane must be byte-identical across thread counts.

use cross_binary_simpoints::core::fuzzy::{mapping_stats, FuzzyConfig, SimpointMapping};
use cross_binary_simpoints::core::CrossBinaryResult;
use cross_binary_simpoints::prelude::*;
use cross_binary_simpoints::program::{compile_with, CompileOptions};
use proptest::prelude::*;

/// The applu scenario: normally-compiled binaries plus optimized
/// siblings compiled with the marker-destroying preset. The normal
/// sibling matters — it keeps the pairwise marker union (and therefore
/// the interval cutting) fine-grained, so the destroyed binaries
/// genuinely cannot translate most boundaries and must fall back to
/// similarity matching. (A set where *every* sibling is destroyed
/// degenerates to coarse-but-exact mapping instead.)
fn destroyed_set(name: &str) -> Vec<Binary> {
    let program = workloads::by_name(name)
        .expect("in suite")
        .build(Scale::Test);
    let destroy = CompileOptions::marker_destroying();
    vec![
        compile(&program, CompileTarget::W32_O0),
        compile(&program, CompileTarget::W64_O0),
        compile_with(&program, CompileTarget::W32_O2, destroy),
        compile_with(&program, CompileTarget::W64_O2, destroy),
    ]
}

fn run_with(binaries: &[Binary], fuzzy: Option<FuzzyConfig>, threads: usize) -> CrossBinaryResult {
    let config = CbspConfig {
        interval_target: 20_000,
        fuzzy,
        simpoint: SimPointConfig {
            threads,
            ..SimPointConfig::default()
        },
        ..CbspConfig::default()
    };
    run_cross_binary(
        &binaries.iter().collect::<Vec<_>>(),
        &Input::test(),
        &config,
    )
    .expect("pipeline succeeds")
}

#[test]
fn fuzzy_lane_maps_marker_destroyed_binaries() {
    for name in ["swim", "gzip"] {
        let bins = destroyed_set(name);
        let r = run_with(&bins, Some(FuzzyConfig::default()), 1);

        assert_eq!(r.mappings.len(), bins.len(), "{name}: one row per binary");
        for row in &r.mappings {
            assert_eq!(row.len(), r.simpoint.points.len());
        }
        // The primary maps itself exactly.
        assert!(r.mappings[0]
            .iter()
            .all(|m| matches!(m, SimpointMapping::Exact)));

        let stats = mapping_stats(&r.mappings);
        assert!(
            stats.mapped_fraction() >= 0.8,
            "{name}: only {:.0}% of simpoints mapped ({stats:?})",
            stats.mapped_fraction() * 100.0
        );
        // The destroyed binaries must actually exercise the fallback —
        // if everything still mapped exactly, the preset (or the
        // pairwise tables) regressed and this test proves nothing.
        assert!(
            stats.fuzzy > 0,
            "{name}: no fuzzy mappings at all ({stats:?})"
        );
        for row in &r.mappings {
            for m in row {
                if let SimpointMapping::Fuzzy {
                    confidence,
                    start,
                    end,
                } = m
                {
                    assert!(
                        (FuzzyConfig::DEFAULT_THRESHOLD..=1.0 + 1e-12).contains(confidence),
                        "{name}: confidence {confidence} outside [threshold, 1]"
                    );
                    assert!(start < end, "{name}: empty fuzzy window");
                }
            }
        }

        // Mapping-aware region files still validate (weights
        // renormalized over the mapped points).
        for (b, bin) in bins.iter().enumerate() {
            let pp = r.pinpoints_for(b, bin, &Input::test());
            assert_eq!(pp.validate(), Ok(()), "{name}: binary {b}");
        }
    }
}

#[test]
fn fuzzy_is_inert_when_every_marker_maps_exactly() {
    // Two unoptimized binaries: no inlining, no splitting — every
    // procedure and loop matches, so the pairwise mappable table
    // equals the global one and no boundary needs the fallback.
    let program = workloads::by_name("swim")
        .expect("in suite")
        .build(Scale::Test);
    let bins = vec![
        compile(&program, CompileTarget::W32_O0),
        compile(&program, CompileTarget::W64_O0),
    ];

    let exact = run_with(&bins, None, 1);
    let fuzzy = run_with(&bins, Some(FuzzyConfig::default()), 1);

    assert!(exact.mappings.is_empty(), "exact lanes carry no mappings");
    assert!(
        fuzzy
            .mappings
            .iter()
            .flatten()
            .all(|m| matches!(m, SimpointMapping::Exact)),
        "all-mappable set must resolve every point exactly"
    );

    // Strip the (all-Exact) mapping records: everything else — cutting,
    // clustering, boundaries, per-binary instruction counts, weights —
    // must be byte-identical to the exact lane.
    let mut stripped = fuzzy.clone();
    stripped.mappings = Vec::new();
    assert_eq!(exact, stripped);
    assert_eq!(
        serde_json::to_string(&exact).expect("serializes"),
        serde_json::to_string(&stripped).expect("serializes"),
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, .. ProptestConfig::default() })]

    /// The fuzzy lane — pairwise tables, offset interpolation, cosine
    /// sweeps and all — must be byte-identical at 1 and 8 threads.
    #[test]
    fn fuzzy_mapping_is_deterministic_across_threads(
        which in 0usize..3,
        t in 0usize..3,
    ) {
        let name = ["swim", "gzip", "mcf"][which];
        let threshold = [0.3f64, 0.6, 0.9][t];
        let bins = destroyed_set(name);
        let fuzzy = Some(FuzzyConfig { threshold });
        let serial = run_with(&bins, fuzzy, 1);
        let pooled = run_with(&bins, fuzzy, 8);
        prop_assert_eq!(&serial, &pooled);
        let serial_json = serde_json::to_string(&serial).expect("serializes");
        let pooled_json = serde_json::to_string(&pooled).expect("serializes");
        prop_assert_eq!(serial_json, pooled_json);
    }
}
