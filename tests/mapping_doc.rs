//! Replays the worked examples in `docs/MAPPING.md` byte for byte.
//!
//! Each example is marked with a `<!-- mapping-verify: ... -->`
//! comment followed by a fenced ```json block holding exactly one
//! line: the serialized mapping record the documented scenario must
//! produce. The marker names the scenario in a tiny spec language:
//!
//! ```text
//! <!-- mapping-verify: swim destroyed threshold=0.6 binary=2 -->
//! <!-- mapping-verify: swim destroyed threshold=0.6 stats -->
//! <!-- mapping-verify: gzip plain threshold=0.6 binary=3 -->
//! ```
//!
//! `destroyed` compiles the optimized siblings with the
//! marker-destroying preset (the paper's `applu` failure mode);
//! `plain` uses the default suite targets. `binary=N` serializes that
//! binary's per-simpoint mapping row, `stats` the aggregate
//! [`MappingStats`]. All scenarios run at `Scale::Test`, interval
//! 20 000, single-threaded (the fuzzy lane is thread-count
//! deterministic anyway — see `tests/fuzzy_mapping.rs`).
//!
//! This is the same contract as `crates/serve/tests/protocol_doc.rs`:
//! the document cannot drift from the implementation without failing
//! CI. After changing the fuzzy matcher, regenerate with
//!
//! ```text
//! cargo test --test mapping_doc -- --ignored
//! ```
//!
//! review the diff, and re-run the non-ignored replay test.

use cross_binary_simpoints::core::fuzzy::{mapping_stats, FuzzyConfig};
use cross_binary_simpoints::core::CrossBinaryResult;
use cross_binary_simpoints::prelude::*;
use cross_binary_simpoints::program::{compile_with, CompileOptions};
use std::collections::BTreeMap;

const DOC_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/MAPPING.md");

/// What a marker asks to be serialized.
enum Output {
    /// One binary's per-simpoint mapping row.
    Binary(usize),
    /// The aggregate `MappingStats` over all binaries.
    Stats,
}

struct Spec {
    benchmark: String,
    destroyed: bool,
    threshold: f64,
    output: Output,
}

fn parse_spec(body: &str, line: usize) -> Spec {
    let mut words = body.split_whitespace();
    let benchmark = words
        .next()
        .unwrap_or_else(|| panic!("marker at line {line}: missing benchmark"))
        .to_string();
    let mut destroyed = None;
    let mut threshold = None;
    let mut output = None;
    for word in words {
        match word {
            "destroyed" => destroyed = Some(true),
            "plain" => destroyed = Some(false),
            "stats" => output = Some(Output::Stats),
            _ => {
                if let Some(t) = word.strip_prefix("threshold=") {
                    threshold =
                        Some(t.parse().unwrap_or_else(|_| {
                            panic!("marker at line {line}: bad threshold {t:?}")
                        }));
                } else if let Some(b) = word.strip_prefix("binary=") {
                    output = Some(Output::Binary(b.parse().unwrap_or_else(|_| {
                        panic!("marker at line {line}: bad binary index {b:?}")
                    })));
                } else {
                    panic!("marker at line {line}: unknown word {word:?}");
                }
            }
        }
    }
    Spec {
        benchmark,
        destroyed: destroyed.unwrap_or_else(|| panic!("marker at line {line}: destroyed|plain")),
        threshold: threshold.unwrap_or_else(|| panic!("marker at line {line}: threshold=")),
        output: output.unwrap_or_else(|| panic!("marker at line {line}: binary=N or stats")),
    }
}

/// The documented binary set: W32/W64 × O0/O2. `destroyed` compiles
/// the O2 siblings with the marker-destroying preset, which is the
/// `applu` scenario of `docs/MAPPING.md`.
fn binary_set(name: &str, destroyed: bool) -> Vec<Binary> {
    let program = workloads::by_name(name)
        .expect("in suite")
        .build(Scale::Test);
    let opts = if destroyed {
        CompileOptions::marker_destroying()
    } else {
        CompileOptions::default()
    };
    vec![
        compile(&program, CompileTarget::W32_O0),
        compile(&program, CompileTarget::W64_O0),
        compile_with(&program, CompileTarget::W32_O2, opts),
        compile_with(&program, CompileTarget::W64_O2, opts),
    ]
}

/// Runs (or reuses) the scenario's pipeline and serializes the output
/// the marker asks for — this exact string must appear in the fence.
fn render(spec: &Spec, cache: &mut BTreeMap<(String, bool, u64), CrossBinaryResult>) -> String {
    let key = (
        spec.benchmark.clone(),
        spec.destroyed,
        spec.threshold.to_bits(),
    );
    let result = cache.entry(key).or_insert_with(|| {
        let bins = binary_set(&spec.benchmark, spec.destroyed);
        let config = CbspConfig {
            interval_target: 20_000,
            fuzzy: Some(FuzzyConfig {
                threshold: spec.threshold,
            }),
            simpoint: SimPointConfig {
                threads: 1,
                ..SimPointConfig::default()
            },
            ..CbspConfig::default()
        };
        run_cross_binary(&bins.iter().collect::<Vec<_>>(), &Input::test(), &config)
            .expect("pipeline succeeds")
    });
    match spec.output {
        Output::Binary(b) => serde_json::to_string(&result.mappings[b]).expect("serializes"),
        Output::Stats => {
            serde_json::to_string(&mapping_stats(&result.mappings)).expect("serializes")
        }
    }
}

struct Example {
    line: usize,
    spec: Spec,
    expected: String,
}

/// Pulls the single line out of the ```json fence that must follow a
/// mapping-verify marker.
fn fenced_line<'a>(
    lines: &mut impl Iterator<Item = (usize, &'a str)>,
    marker_line: usize,
) -> String {
    let Some((_, fence)) = lines.next() else {
        panic!("marker at line {marker_line} is not followed by a fence");
    };
    assert_eq!(
        fence.trim(),
        "```json",
        "marker at line {marker_line} must be followed by a ```json fence"
    );
    let mut body = None;
    for (n, line) in lines.by_ref() {
        if line.trim() == "```" {
            return body.unwrap_or_else(|| panic!("empty fence after line {marker_line}"));
        }
        assert!(
            body.is_none(),
            "fence after line {marker_line} holds more than one line (line {n})"
        );
        body = Some(line.to_string());
    }
    panic!("unterminated fence after line {marker_line}");
}

fn extract_examples(doc: &str) -> Vec<Example> {
    let mut lines = doc.lines().enumerate();
    let mut examples = Vec::new();
    while let Some((n, line)) = lines.next() {
        let trimmed = line.trim();
        let Some(body) = trimmed
            .strip_prefix("<!-- mapping-verify:")
            .and_then(|rest| rest.strip_suffix("-->"))
        else {
            continue;
        };
        examples.push(Example {
            line: n + 1,
            spec: parse_spec(body, n + 1),
            expected: fenced_line(&mut lines, n + 1),
        });
    }
    examples
}

#[test]
fn documented_examples_replay_byte_for_byte() {
    let doc = std::fs::read_to_string(DOC_PATH).expect("docs/MAPPING.md readable");
    let examples = extract_examples(&doc);
    assert!(
        examples.len() >= 4,
        "MAPPING.md documents at least four verified examples, found {}",
        examples.len()
    );

    let mut cache = BTreeMap::new();
    for example in &examples {
        let got = render(&example.spec, &mut cache);
        assert_eq!(
            got, example.expected,
            "mapping record drifted from the example documented at MAPPING.md line {}",
            example.line
        );
    }
}

/// Rewrites every mapping-verify fence in `docs/MAPPING.md` with the
/// freshly computed record — markers and prose are left untouched.
/// Run manually after any change to the fuzzy matcher, then review
/// the diff and re-run the replay test.
#[test]
#[ignore = "rewrites docs/MAPPING.md from live pipeline output"]
fn regenerate_documented_examples() {
    let doc = std::fs::read_to_string(DOC_PATH).expect("docs/MAPPING.md readable");

    let mut cache = BTreeMap::new();
    let mut out = String::new();
    let mut lines = doc.lines().enumerate();
    while let Some((n, line)) = lines.next() {
        out.push_str(line);
        out.push('\n');
        let trimmed = line.trim();
        let Some(body) = trimmed
            .strip_prefix("<!-- mapping-verify:")
            .and_then(|rest| rest.strip_suffix("-->"))
        else {
            continue;
        };
        let spec = parse_spec(body, n + 1);
        // Consume the existing fence, whatever it holds.
        let _ = fenced_line(&mut lines, n + 1);
        out.push_str("```json\n");
        out.push_str(&render(&spec, &mut cache));
        out.push_str("\n```\n");
    }

    if out != doc {
        std::fs::write(DOC_PATH, out).expect("docs/MAPPING.md written");
    }
}
