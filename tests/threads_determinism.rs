//! Thread-count determinism: the full cross-binary pipeline must
//! produce byte-identical results at `threads = 1` and `threads = 8`.
//!
//! This is the engine's central parallelism contract (fixed chunk
//! sizes, partial reductions merged in chunk order), checked here at
//! the outermost observable boundary — the [`CrossBinaryResult`] and
//! its serialized JSON — rather than per component.

use cross_binary_simpoints::core::CrossBinaryResult;
use cross_binary_simpoints::prelude::*;
use proptest::prelude::*;

fn run_at(name: &str, interval: u64, seed: u64, threads: usize) -> CrossBinaryResult {
    run_lane_at(name, interval, seed, threads, EstimatorConfig::default())
}

fn run_lane_at(
    name: &str,
    interval: u64,
    seed: u64,
    threads: usize,
    estimator: EstimatorConfig,
) -> CrossBinaryResult {
    let program = workloads::by_name(name)
        .expect("in suite")
        .build(Scale::Test);
    let binaries: Vec<Binary> = CompileTarget::ALL_FOUR
        .iter()
        .map(|&t| compile(&program, t))
        .collect();
    let config = CbspConfig {
        interval_target: interval,
        estimator,
        simpoint: SimPointConfig {
            seed,
            threads,
            ..SimPointConfig::default()
        },
        ..CbspConfig::default()
    };
    run_cross_binary(
        &binaries.iter().collect::<Vec<_>>(),
        &Input::test(),
        &config,
    )
    .expect("pipeline succeeds on same-program binaries")
}

#[test]
fn pipeline_is_byte_identical_across_thread_counts() {
    for name in ["gzip", "mcf"] {
        let serial = run_at(name, 20_000, 42, 1);
        let pooled = run_at(name, 20_000, 42, 8);
        assert_eq!(serial, pooled, "{name}: results differ by thread count");
        let serial_json = serde_json::to_string(&serial).expect("serializes");
        let pooled_json = serde_json::to_string(&pooled).expect("serializes");
        assert_eq!(
            serial_json, pooled_json,
            "{name}: serialized results differ by thread count"
        );
    }
}

#[test]
fn auto_thread_count_matches_serial() {
    // threads = 0 (one worker per core) must also be identical.
    let serial = run_at("swim", 20_000, 7, 1);
    let auto = run_at("swim", 20_000, 7, 0);
    assert_eq!(serial, auto);
}

#[test]
fn every_estimator_lane_is_byte_identical_across_thread_counts() {
    for tag in EstimatorConfig::KNOWN_TAGS {
        let estimator = EstimatorConfig::parse(tag).expect("known tag");
        let serial = run_lane_at("gzip", 20_000, 42, 1, estimator);
        let pooled = run_lane_at("gzip", 20_000, 42, 8, estimator);
        assert_eq!(serial, pooled, "{tag}: results differ by thread count");
        let serial_json = serde_json::to_string(&serial).expect("serializes");
        let pooled_json = serde_json::to_string(&pooled).expect("serializes");
        assert_eq!(
            serial_json, pooled_json,
            "{tag}: serialized results differ by thread count"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Byte-identical output at 1 vs 8 threads over random seeds,
    /// interval targets, and estimator lanes on small workloads.
    #[test]
    fn pipeline_thread_determinism_over_seeds(
        seed in any::<u64>(),
        interval in 10_000u64..40_000,
        which in 0usize..3,
        lane in 0usize..EstimatorConfig::KNOWN_TAGS.len(),
    ) {
        let name = ["gzip", "swim", "mcf"][which];
        let estimator = EstimatorConfig::parse(EstimatorConfig::KNOWN_TAGS[lane])
            .expect("known tag");
        let serial = run_lane_at(name, interval, seed, 1, estimator);
        let pooled = run_lane_at(name, interval, seed, 8, estimator);
        prop_assert_eq!(&serial, &pooled);
        let serial_json = serde_json::to_string(&serial).expect("serializes");
        let pooled_json = serde_json::to_string(&pooled).expect("serializes");
        prop_assert_eq!(serial_json, pooled_json);
    }
}
