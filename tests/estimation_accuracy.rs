//! Accuracy integration tests at Train scale: the headline claims of
//! the paper, asserted as thresholds the implementation must keep.
//!
//! These run three benchmarks end to end (profiling, clustering,
//! mapping, simulation) and check both schemes' CPI accuracy plus the
//! cross-binary consistency property that motivates the technique.

use cross_binary_simpoints::core::{weighted_cpi, weighted_cpi_with};
use cross_binary_simpoints::prelude::*;
use cross_binary_simpoints::sim::IntervalSim;

const INTERVAL: u64 = 50_000;

struct Evaluated {
    true_cycles: [f64; 4],
    vli_cycles: [f64; 4],
    fli_cycles: [f64; 4],
}

fn evaluate(name: &str) -> Evaluated {
    let program = workloads::by_name(name)
        .expect("in suite")
        .build(Scale::Train);
    let input = Input::train();
    let binaries: Vec<Binary> = CompileTarget::ALL_FOUR
        .iter()
        .map(|&t| compile(&program, t))
        .collect();
    let config = CbspConfig {
        interval_target: INTERVAL,
        ..CbspConfig::default()
    };
    let result = run_cross_binary(&binaries.iter().collect::<Vec<_>>(), &input, &config)
        .expect("pipeline succeeds");
    let mem = MemoryConfig::table1();

    let mut out = Evaluated {
        true_cycles: [0.0; 4],
        vli_cycles: [0.0; 4],
        fli_cycles: [0.0; 4],
    };
    for (b, bin) in binaries.iter().enumerate() {
        let (full, mut ivs) = simulate_marker_sliced(bin, &input, &mem, &result.boundaries[b]);
        ivs.resize(result.interval_count(), IntervalSim::default());
        let cpis: Vec<f64> = ivs.iter().map(IntervalSim::cpi).collect();
        out.true_cycles[b] = full.cycles as f64;
        out.vli_cycles[b] = weighted_cpi_with(&result.simpoint.points, &result.weights[b], &cpis)
            * full.instructions as f64;

        let analysis = run_per_binary(bin, &input, INTERVAL, &SimPointConfig::default());
        let (_, fivs) = simulate_fli_sliced(bin, &input, &mem, INTERVAL);
        let fcpis: Vec<f64> = fivs.iter().map(IntervalSim::cpi).collect();
        out.fli_cycles[b] =
            weighted_cpi(&analysis.simpoint.points, &fcpis) * full.instructions as f64;
    }
    out
}

fn speedup_err(cycles: &[f64; 4], truth: &[f64; 4], a: usize, b: usize) -> f64 {
    let t = truth[a] / truth[b];
    let e = cycles[a] / cycles[b];
    ((t - e) / t).abs()
}

#[test]
fn both_schemes_estimate_cpi_within_five_percent() {
    for name in ["gzip", "crafty", "mesa"] {
        let e = evaluate(name);
        for b in 0..4 {
            let vli = (e.true_cycles[b] - e.vli_cycles[b]).abs() / e.true_cycles[b];
            let fli = (e.true_cycles[b] - e.fli_cycles[b]).abs() / e.true_cycles[b];
            assert!(vli < 0.05, "{name} bin{b}: VLI cycle error {vli:.4}");
            assert!(fli < 0.05, "{name} bin{b}: FLI cycle error {fli:.4}");
        }
    }
}

#[test]
fn cross_binary_speedups_are_accurate_under_vli() {
    // All four of the paper's pair configurations, on three benchmarks:
    // the mapped scheme must estimate speedups within 5%.
    for name in ["gzip", "crafty", "mesa"] {
        let e = evaluate(name);
        for (a, b) in [(0, 1), (2, 3), (0, 2), (1, 3)] {
            let err = speedup_err(&e.vli_cycles, &e.true_cycles, a, b);
            assert!(
                err < 0.05,
                "{name} pair ({a},{b}): VLI speedup error {err:.4}"
            );
        }
    }
}

#[test]
fn optimized_binaries_really_are_faster() {
    // Sanity of the substrate itself: -O2 cuts total cycles by at
    // least 1.5x, and the speedup survives in both widths.
    for name in ["gzip", "mesa"] {
        let e = evaluate(name);
        assert!(
            e.true_cycles[0] / e.true_cycles[1] > 1.5,
            "{name}: 32-bit O0/O2 cycle ratio too small"
        );
        assert!(
            e.true_cycles[2] / e.true_cycles[3] > 1.5,
            "{name}: 64-bit O0/O2 cycle ratio too small"
        );
    }
}
