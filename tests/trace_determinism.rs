//! Observability must be a pure observer: enabling the `cbsp-trace`
//! collector must not change a single output byte, at any thread
//! count.
//!
//! The pipeline's parallelism contract is byte-identical results at
//! 1 vs N threads (see `threads_determinism.rs`). Instrumentation
//! reads clocks and bumps counters on those same code paths, so this
//! test closes the remaining loophole: the serialized
//! [`CrossBinaryResult`] is compared across the full
//! {tracing off, tracing on} × {1 thread, 8 threads} matrix.

use cross_binary_simpoints::core::CrossBinaryResult;
use cross_binary_simpoints::prelude::*;

fn run_at(name: &str, threads: usize) -> CrossBinaryResult {
    let program = workloads::by_name(name)
        .expect("in suite")
        .build(Scale::Test);
    let binaries: Vec<Binary> = CompileTarget::ALL_FOUR
        .iter()
        .map(|&t| compile(&program, t))
        .collect();
    let config = CbspConfig {
        interval_target: 20_000,
        simpoint: SimPointConfig {
            seed: 42,
            threads,
            ..SimPointConfig::default()
        },
        ..CbspConfig::default()
    };
    run_cross_binary(
        &binaries.iter().collect::<Vec<_>>(),
        &Input::test(),
        &config,
    )
    .expect("pipeline succeeds on same-program binaries")
}

#[test]
fn tracing_does_not_change_pipeline_output() {
    // The collector is process-global; serialize against other tests.
    let _guard = cbsp_trace::test_lock();

    for name in ["gzip", "mcf"] {
        let mut outputs: Vec<(String, String)> = Vec::new();
        for tracing in [false, true] {
            for threads in [1usize, 8] {
                cbsp_trace::reset();
                if tracing {
                    cbsp_trace::enable();
                } else {
                    cbsp_trace::disable();
                }
                let result = run_at(name, threads);
                let json = serde_json::to_string(&result).expect("serializes");
                outputs.push((format!("tracing={tracing} threads={threads}"), json));
            }
        }
        cbsp_trace::disable();
        cbsp_trace::reset();

        let (base_label, base_json) = &outputs[0];
        for (label, json) in &outputs[1..] {
            assert_eq!(
                json, base_json,
                "{name}: output at {label} differs from {base_label}"
            );
        }
    }
}

#[test]
fn tracing_actually_collects_while_staying_pure() {
    // Guard against the trivial way to pass the test above: tracing
    // that never records anything. The traced run must produce spans
    // for every pipeline stage and a nonzero interval count.
    let _guard = cbsp_trace::test_lock();
    cbsp_trace::reset();
    cbsp_trace::enable();
    let _ = run_at("gzip", 8);
    let snap = cbsp_trace::snapshot();
    cbsp_trace::disable();
    cbsp_trace::reset();

    for stage in [
        "stage/profile",
        "stage/mappable",
        "stage/vli",
        "stage/simpoint",
        "stage/map",
    ] {
        assert!(
            snap.spans.contains_key(stage),
            "missing span {stage}, got {:?}",
            snap.spans.keys().collect::<Vec<_>>()
        );
    }
    assert!(snap.counters["pipeline/intervals_produced"] > 0);
    assert!(snap.counters["simpoint/kmeans_iterations"] > 0);
}
