//! Suite-wide smoke test: the full cross-binary pipeline must succeed,
//! with its structural invariants, on every one of the 21 benchmarks.
//! (Accuracy thresholds live in `estimation_accuracy.rs`; this test is
//! about breadth — no workload may break any pipeline stage.)

use cross_binary_simpoints::prelude::*;

#[test]
fn every_benchmark_survives_the_full_pipeline() {
    let input = Input::test();
    let config = CbspConfig {
        interval_target: 30_000,
        ..CbspConfig::default()
    };
    for w in workloads::suite() {
        let program = w.build(Scale::Test);
        let binaries: Vec<Binary> = CompileTarget::ALL_FOUR
            .iter()
            .map(|&t| compile(&program, t))
            .collect();
        let result = run_cross_binary(&binaries.iter().collect::<Vec<_>>(), &input, &config)
            .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", w.name));

        // Structure.
        assert!(result.interval_count() >= 1, "{}", w.name);
        assert!(
            result.simpoint.k >= 1 && result.simpoint.k <= 10,
            "{}: k = {}",
            w.name,
            result.simpoint.k
        );
        assert!(
            !result.mappable.points.is_empty(),
            "{}: no mappable points at all",
            w.name
        );
        // Weights are proper distributions in every binary.
        for (b, weights) in result.weights.iter().enumerate() {
            let total: f64 = weights.iter().sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "{} binary {b}: weights sum {total}",
                w.name
            );
        }
        // Every boundary is expressed in each binary's own marker space.
        for (b, bounds) in result.boundaries.iter().enumerate() {
            for bp in bounds {
                let in_range = match bp.marker {
                    cross_binary_simpoints::profile::MarkerRef::Proc(i) => {
                        (i as usize) < binaries[b].procs.len()
                    }
                    cross_binary_simpoints::profile::MarkerRef::LoopEntry(i)
                    | cross_binary_simpoints::profile::MarkerRef::LoopBack(i) => {
                        (i as usize) < binaries[b].loops.len()
                    }
                };
                assert!(in_range, "{} binary {b}: marker out of range", w.name);
            }
        }
        // PinPoints files validate for every binary.
        for (b, bin) in binaries.iter().enumerate() {
            let pp = result.pinpoints_for(b, bin, &input);
            assert_eq!(pp.validate(), Ok(()), "{} binary {b}", w.name);
        }
    }
}

#[test]
fn per_binary_baseline_survives_every_benchmark() {
    let input = Input::test();
    for w in workloads::suite() {
        let program = w.build(Scale::Test);
        // One binary per benchmark suffices for breadth here.
        let bin = compile(&program, CompileTarget::W64_O0);
        let analysis = run_per_binary(&bin, &input, 30_000, &SimPointConfig::default());
        assert!(analysis.interval_count() >= 1, "{}", w.name);
        assert!(
            (analysis.simpoint.total_weight() - 1.0).abs() < 1e-9,
            "{}",
            w.name
        );
        let pp = analysis.pinpoints(&bin, &input);
        assert_eq!(pp.validate(), Ok(()), "{}", w.name);
    }
}

#[test]
fn expected_hazards_appear_where_designed() {
    // The workload suite encodes specific cross-binary hazards; verify
    // they are present (so a workload edit cannot silently drop the
    // phenomenon an experiment depends on).
    let input = Input::test();
    let config = CbspConfig {
        interval_target: 30_000,
        ..CbspConfig::default()
    };
    let analyze = |name: &str| {
        let program = workloads::by_name(name)
            .expect("in suite")
            .build(Scale::Test);
        let binaries: Vec<Binary> = CompileTarget::ALL_FOUR
            .iter()
            .map(|&t| compile(&program, t))
            .collect();
        run_cross_binary(&binaries.iter().collect::<Vec<_>>(), &input, &config)
            .expect("pipeline runs")
    };

    // fma3d, crafty, wupwise: inline recovery succeeds.
    for name in ["fma3d", "crafty", "wupwise"] {
        let r = analyze(name);
        assert!(r.recovered_procs > 0, "{name}: expected inline recovery");
    }
    // applu: recovery fails (identical solver signatures) and intervals
    // balloon.
    let applu = analyze("applu");
    assert_eq!(
        applu.recovered_procs, 0,
        "applu recovery must stay ambiguous"
    );
    assert!(
        applu.vli.average_interval_size() > 2.0 * 30_000.0,
        "applu intervals must balloon: {}",
        applu.vli.average_interval_size()
    );
    // equake, sixtrack, swim, gzip, lucas: an unrolled loop exists, so at
    // least one loop body is unmappable while its entry is mappable.
    for name in ["equake", "sixtrack", "swim", "gzip", "lucas"] {
        let r = analyze(name);
        let entries = r.mappable.of_kind(PointKind::LoopEntry).count();
        let bodies = r.mappable.of_kind(PointKind::LoopBody).count();
        assert!(
            bodies < entries,
            "{name}: unrolling should cost at least one loop body ({bodies} vs {entries})"
        );
    }
}
