//! End-to-end integration tests: the full cross-binary pipeline against
//! the full simulator, spanning every workspace crate.

use cross_binary_simpoints::core::{weighted_cpi, weighted_cpi_with};
use cross_binary_simpoints::prelude::*;
use cross_binary_simpoints::sim::IntervalSim;

const INTERVAL: u64 = 20_000;

fn binaries_of(name: &str) -> (Vec<Binary>, Input) {
    let program = workloads::by_name(name)
        .expect("in suite")
        .build(Scale::Test);
    let binaries = CompileTarget::ALL_FOUR
        .iter()
        .map(|&t| compile(&program, t))
        .collect();
    (binaries, Input::test())
}

fn cross(binaries: &[Binary], input: &Input) -> cross_binary_simpoints::core::CrossBinaryResult {
    let config = CbspConfig {
        interval_target: INTERVAL,
        ..CbspConfig::default()
    };
    run_cross_binary(&binaries.iter().collect::<Vec<_>>(), input, &config)
        .expect("pipeline succeeds on same-program binaries")
}

#[test]
fn vli_estimates_track_truth_on_every_binary() {
    let (binaries, input) = binaries_of("gzip");
    let result = cross(&binaries, &input);
    let mem = MemoryConfig::table1();
    for (b, bin) in binaries.iter().enumerate() {
        let (full, mut intervals) =
            simulate_marker_sliced(bin, &input, &mem, &result.boundaries[b]);
        intervals.resize(result.interval_count(), IntervalSim::default());
        let cpis: Vec<f64> = intervals.iter().map(IntervalSim::cpi).collect();
        let est = weighted_cpi_with(&result.simpoint.points, &result.weights[b], &cpis);
        let err = (full.cpi() - est).abs() / full.cpi();
        assert!(
            err < 0.10,
            "{}: VLI CPI estimate {est:.3} vs true {:.3} (err {err:.3})",
            bin.label(),
            full.cpi()
        );
    }
}

#[test]
fn fli_estimates_track_truth_on_every_binary() {
    let (binaries, input) = binaries_of("swim");
    let mem = MemoryConfig::table1();
    for bin in &binaries {
        let analysis = run_per_binary(bin, &input, INTERVAL, &SimPointConfig::default());
        let (full, intervals) = simulate_fli_sliced(bin, &input, &mem, INTERVAL);
        assert_eq!(intervals.len(), analysis.intervals.len(), "slicings align");
        for (sim, prof) in intervals.iter().zip(&analysis.intervals) {
            assert_eq!(sim.instructions, prof.instrs, "interval boundaries agree");
        }
        let cpis: Vec<f64> = intervals.iter().map(IntervalSim::cpi).collect();
        let est = weighted_cpi(&analysis.simpoint.points, &cpis);
        let err = (full.cpi() - est).abs() / full.cpi();
        assert!(err < 0.10, "{}: FLI err {err:.3}", bin.label());
    }
}

#[test]
fn mapped_boundaries_reach_every_binary_and_partition_it() {
    let (binaries, input) = binaries_of("art");
    let result = cross(&binaries, &input);
    let mem = MemoryConfig::table1();
    for (b, bin) in binaries.iter().enumerate() {
        let (full, intervals) = simulate_marker_sliced(bin, &input, &mem, &result.boundaries[b]);
        let sum: u64 = intervals.iter().map(|i| i.instructions).sum();
        assert_eq!(sum, full.instructions, "{}: partition", bin.label());
        let cycles: u64 = intervals.iter().map(|i| i.cycles).sum();
        assert_eq!(cycles, full.cycles, "{}: cycle partition", bin.label());
    }
}

#[test]
fn per_binary_weights_reflect_instruction_shares() {
    let (binaries, input) = binaries_of("apsi");
    let result = cross(&binaries, &input);
    for b in 0..binaries.len() {
        let total: u64 = result.interval_instrs[b].iter().sum();
        for pt in &result.simpoint.points {
            let phase_instrs: u64 = result
                .simpoint
                .labels
                .iter()
                .enumerate()
                .filter(|(_, &l)| l == pt.phase)
                .map(|(i, _)| result.interval_instrs[b][i])
                .sum();
            let expect = phase_instrs as f64 / total as f64;
            let got = result.weights[b][pt.phase as usize];
            assert!(
                (expect - got).abs() < 1e-12,
                "binary {b} phase {}: weight {got} != share {expect}",
                pt.phase
            );
        }
    }
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let (binaries, input) = binaries_of("twolf");
    let a = cross(&binaries, &input);
    let b = cross(&binaries, &input);
    assert_eq!(a.simpoint, b.simpoint);
    assert_eq!(a.boundaries, b.boundaries);
    assert_eq!(a.weights, b.weights);
    assert_eq!(a.mappable.points.len(), b.mappable.points.len());
}

#[test]
fn primary_choice_changes_intervals_but_not_mappability() {
    let (binaries, input) = binaries_of("eon");
    let refs: Vec<&Binary> = binaries.iter().collect();
    for primary in 0..4 {
        let config = CbspConfig {
            interval_target: INTERVAL,
            primary,
            ..CbspConfig::default()
        };
        let result = run_cross_binary(&refs, &input, &config).expect("any primary works");
        assert_eq!(result.primary, primary);
        assert!(result.interval_count() >= 1);
        // Weights still sum to 1 in every binary.
        for w in &result.weights {
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        // The tail interval can be empty in at most... no binary should
        // have more than one zero-instruction mapped interval.
        for slices in &result.interval_instrs {
            let zeros = slices.iter().filter(|&&s| s == 0).count();
            assert!(zeros <= 1, "primary {primary}: {zeros} empty intervals");
        }
    }
}

#[test]
fn pipelines_work_on_two_binary_sets() {
    // The paper's first scenario compares exactly two binaries (IA32 vs
    // Intel64). The pipeline must work for any subset, not just all four.
    let (binaries, input) = binaries_of("mcf");
    let config = CbspConfig {
        interval_target: INTERVAL,
        ..CbspConfig::default()
    };
    let pair = [&binaries[1], &binaries[3]]; // 32o vs 64o
    let result = run_cross_binary(&pair, &input, &config).expect("two binaries suffice");
    assert_eq!(result.boundaries.len(), 2);
    assert_eq!(result.weights.len(), 2);
    // Two binaries share MORE mappable points than four (fewer
    // constraints to satisfy).
    let all = cross(&binaries, &input);
    assert!(
        result.mappable.points.len() >= all.mappable.points.len(),
        "2-binary set: {} points vs 4-binary: {}",
        result.mappable.points.len(),
        all.mappable.points.len()
    );
    let mem = MemoryConfig::table1();
    for (b, bin) in pair.iter().enumerate() {
        let (full, ivs) = simulate_marker_sliced(bin, &input, &mem, &result.boundaries[b]);
        assert_eq!(
            ivs.iter().map(|i| i.instructions).sum::<u64>(),
            full.instructions
        );
    }
}

#[test]
fn pipelines_work_on_three_binary_sets() {
    let (binaries, input) = binaries_of("vpr");
    let config = CbspConfig {
        interval_target: INTERVAL,
        primary: 2,
        ..CbspConfig::default()
    };
    let trio = [&binaries[0], &binaries[2], &binaries[3]];
    let result = run_cross_binary(&trio, &input, &config).expect("three binaries");
    assert_eq!(result.primary, 2);
    assert_eq!(result.boundaries.len(), 3);
    for w in &result.weights {
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}

#[test]
fn single_binary_set_degenerates_to_per_binary_vli() {
    // With one binary everything is trivially mappable; the pipeline
    // must still run (useful for its VLI mode alone).
    let (binaries, input) = binaries_of("eon");
    let config = CbspConfig {
        interval_target: INTERVAL,
        ..CbspConfig::default()
    };
    let result = run_cross_binary(&[&binaries[0]], &input, &config).expect("one binary");
    assert_eq!(result.boundaries.len(), 1);
    assert!(result.interval_count() > 2);
    assert!((result.weights[0].iter().sum::<f64>() - 1.0).abs() < 1e-9);
}

#[test]
fn speedup_estimates_beat_per_binary_on_the_hard_cases() {
    // gcc is the paper's Table 2 case: per-binary clustering regroups
    // behaviours differently in different binaries. The mappable scheme
    // must estimate the 32u -> 64u speedup at least as well.
    let (binaries, input) = binaries_of("gcc");
    let result = cross(&binaries, &input);
    let mem = MemoryConfig::table1();

    let mut true_cycles = [0.0f64; 4];
    let mut vli_cycles = [0.0f64; 4];
    let mut fli_cycles = [0.0f64; 4];
    for (b, bin) in binaries.iter().enumerate() {
        let (full, mut ivs) = simulate_marker_sliced(bin, &input, &mem, &result.boundaries[b]);
        ivs.resize(result.interval_count(), IntervalSim::default());
        let cpis: Vec<f64> = ivs.iter().map(IntervalSim::cpi).collect();
        true_cycles[b] = full.cycles as f64;
        vli_cycles[b] = weighted_cpi_with(&result.simpoint.points, &result.weights[b], &cpis)
            * full.instructions as f64;

        let analysis = run_per_binary(bin, &input, INTERVAL, &SimPointConfig::default());
        let (_, fivs) = simulate_fli_sliced(bin, &input, &mem, INTERVAL);
        let fcpis: Vec<f64> = fivs.iter().map(IntervalSim::cpi).collect();
        fli_cycles[b] = weighted_cpi(&analysis.simpoint.points, &fcpis) * full.instructions as f64;
    }
    let true_speedup = true_cycles[0] / true_cycles[2];
    let vli_err = ((true_speedup - vli_cycles[0] / vli_cycles[2]) / true_speedup).abs();
    let fli_err = ((true_speedup - fli_cycles[0] / fli_cycles[2]) / true_speedup).abs();
    assert!(
        vli_err <= fli_err + 0.01,
        "VLI ({vli_err:.4}) should not lose to FLI ({fli_err:.4}) on gcc"
    );
    assert!(vli_err < 0.05, "VLI speedup error {vli_err:.4} too large");
}
