//! # Cross Binary Simulation Points
//!
//! A complete reproduction of *"Cross Binary Simulation Points"*
//! (Perelman, Lau, Patil, Jaleel, Hamerly, Calder — ISPASS 2007) as a
//! Rust workspace. This facade crate re-exports the workspace members:
//!
//! * [`program`] — the program substrate: source IR, a 21-benchmark
//!   suite, an optimizing-compiler model producing the paper's four
//!   binaries per program, and a deterministic trace-producing executor
//!   (the role SPEC + Intel compilers + Pin play in the paper);
//! * [`profile`] — instrumentation: BBV profiling, call/loop profiles,
//!   marker execution coordinates, PinPoints-style region files;
//! * [`simpoint`] — a SimPoint 3.0 reimplementation (random projection,
//!   weighted k-means with k-means++, BIC model selection, simulation
//!   point + weight selection, variable-length-interval support);
//! * [`core`] — the paper's contribution: mappable points across
//!   binaries, inline recovery, VLI construction, the six-step
//!   cross-binary pipeline, and the evaluation metrics;
//! * [`sim`] — a CMP$im-like simulator (in-order core, three-level
//!   non-inclusive write-back cache hierarchy per the paper's Table 1).
//!
//! ## Quickstart
//!
//! ```
//! use cross_binary_simpoints::prelude::*;
//!
//! // One benchmark, four binaries ({32, 64-bit} × {-O0, -O2}).
//! let program = workloads::by_name("gzip").expect("in suite").build(Scale::Test);
//! let binaries: Vec<Binary> = CompileTarget::ALL_FOUR
//!     .iter()
//!     .map(|&t| compile(&program, t))
//!     .collect();
//!
//! // One set of simulation points, mapped across all four binaries.
//! let config = CbspConfig { interval_target: 20_000, ..CbspConfig::default() };
//! let result = run_cross_binary(
//!     &binaries.iter().collect::<Vec<_>>(),
//!     &Input::test(),
//!     &config,
//! )?;
//! assert_eq!(result.boundaries.len(), 4);
//! # Ok::<(), CbspError>(())
//! ```
//!
//! See `examples/` for full scenarios (ISA-extension comparison,
//! compiler-optimization evaluation, phase analysis) and the
//! `cbsp-bench` crate for the harness regenerating every table and
//! figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cbsp_core as core;
pub use cbsp_profile as profile;
pub use cbsp_program as program;
pub use cbsp_sim as sim;
pub use cbsp_simpoint as simpoint;

/// Convenient single import for the common workflow.
pub mod prelude {
    pub use cbsp_core::{
        run_cross_binary, run_per_binary, CbspConfig, CbspError, CrossBinaryResult, MappableSet,
        PerBinaryResult, PointKind,
    };
    pub use cbsp_profile::{profile_fli, CallLoopProfile, ExecPoint, MarkerRef, PinPointsFile};
    pub use cbsp_program::{
        compile, run, workloads, Binary, CompileTarget, Input, NullSink, Scale, TraceSink,
    };
    pub use cbsp_sim::{
        simulate_fli_sliced, simulate_full, simulate_marker_sliced, MemoryConfig, SimStats,
    };
    pub use cbsp_simpoint::{analyze, EstimatorConfig, SimPointConfig, SimPointResult};
}
