//! ISA-extension study — the paper's first motivating scenario (§1):
//! "one of the questions Intel architects want to answer is how their
//! new processors will perform with 32-bit (IA32) and 64-bit (Intel64)
//! binaries, and what is the difference in performance."
//!
//! For a set of benchmarks, this example estimates the 32-bit → 64-bit
//! performance ratio with BOTH techniques (per-binary SimPoint and
//! mappable cross-binary SimPoint) and compares each against the true
//! ratio from full simulation — reproducing the Figure 5 methodology on
//! a subset.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example isa_extension_study
//! ```

use cross_binary_simpoints::core::{weighted_cpi, weighted_cpi_with};
use cross_binary_simpoints::prelude::*;
use cross_binary_simpoints::sim::IntervalSim;

const BENCHMARKS: [&str; 5] = ["mcf", "gcc", "crafty", "swim", "mesa"];
const INTERVAL: u64 = 50_000;

fn main() -> Result<(), CbspError> {
    let input = Input::train();
    let mem = MemoryConfig::table1();
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "benchmark", "true", "per-bin", "mappable", "err(pb)", "err(map)"
    );

    for name in BENCHMARKS {
        let program = workloads::by_name(name)
            .expect("in suite")
            .build(Scale::Train);
        // The ISA comparison: optimized 32-bit vs optimized 64-bit.
        let b32 = compile(&program, CompileTarget::W32_O2);
        let b64 = compile(&program, CompileTarget::W64_O2);

        // --- Ground truth.
        let full32 = simulate_full(&b32, &input, &mem);
        let full64 = simulate_full(&b64, &input, &mem);
        let true_ratio = full32.cycles as f64 / full64.cycles as f64;

        // --- Per-binary SimPoint: separate points per binary.
        let sp_config = SimPointConfig::default();
        let mut est = [0.0f64; 2];
        for (i, bin) in [&b32, &b64].into_iter().enumerate() {
            let analysis = run_per_binary(bin, &input, INTERVAL, &sp_config);
            let (full, intervals) = simulate_fli_sliced(bin, &input, &mem, INTERVAL);
            let cpis: Vec<f64> = intervals.iter().map(IntervalSim::cpi).collect();
            est[i] = weighted_cpi(&analysis.simpoint.points, &cpis) * full.instructions as f64;
        }
        let perbin_ratio = est[0] / est[1];

        // --- Mappable cross-binary SimPoint: one set of points.
        let config = CbspConfig {
            interval_target: INTERVAL,
            ..CbspConfig::default()
        };
        let result = run_cross_binary(&[&b32, &b64], &input, &config)?;
        let mut est = [0.0f64; 2];
        for (i, bin) in [&b32, &b64].into_iter().enumerate() {
            let (full, mut intervals) =
                simulate_marker_sliced(bin, &input, &mem, &result.boundaries[i]);
            intervals.resize(result.interval_count(), IntervalSim::default());
            let cpis: Vec<f64> = intervals.iter().map(IntervalSim::cpi).collect();
            est[i] = weighted_cpi_with(&result.simpoint.points, &result.weights[i], &cpis)
                * full.instructions as f64;
        }
        let mapped_ratio = est[0] / est[1];

        println!(
            "{:<10} {:>9.3}x {:>9.3}x {:>9.3}x {:>8.2}% {:>8.2}%",
            name,
            true_ratio,
            perbin_ratio,
            mapped_ratio,
            100.0 * ((true_ratio - perbin_ratio) / true_ratio).abs(),
            100.0 * ((true_ratio - mapped_ratio) / true_ratio).abs()
        );
    }
    println!("\n(ratio = 32-bit cycles / 64-bit cycles; >1 means 64-bit is faster)");
    Ok(())
}
