//! Quickstart: one benchmark, four binaries, one set of cross-binary
//! simulation points — then verify the estimated speedup against the
//! true speedup from full simulation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cross_binary_simpoints::core::weighted_cpi_with;
use cross_binary_simpoints::prelude::*;
use cross_binary_simpoints::sim::IntervalSim;

fn main() -> Result<(), CbspError> {
    // 1. Build a program and compile the paper's four binaries:
    //    {32-bit, 64-bit} x {unoptimized, optimized}.
    let program = workloads::by_name("gzip")
        .expect("gzip is in the suite")
        .build(Scale::Train);
    let input = Input::train();
    let binaries: Vec<Binary> = CompileTarget::ALL_FOUR
        .iter()
        .map(|&t| compile(&program, t))
        .collect();
    println!("program: {} ({} binaries)", program.name, binaries.len());

    // 2. Find one set of simulation points usable across all binaries.
    let config = CbspConfig {
        interval_target: 50_000,
        ..CbspConfig::default()
    };
    let result = run_cross_binary(&binaries.iter().collect::<Vec<_>>(), &input, &config)?;
    println!(
        "mappable points: {} ({} recovered procedures), {} intervals, {} phases",
        result.mappable.points.len(),
        result.recovered_procs,
        result.interval_count(),
        result.simpoint.k,
    );

    // 3. Simulate each binary only at the mapped points and extrapolate.
    let mem = MemoryConfig::table1();
    let mut est_cycles = [0.0f64; 4];
    let mut true_cycles = [0.0f64; 4];
    for (b, bin) in binaries.iter().enumerate() {
        let (full, mut intervals) =
            simulate_marker_sliced(bin, &input, &mem, &result.boundaries[b]);
        intervals.resize(result.interval_count(), IntervalSim::default());
        let cpis: Vec<f64> = intervals.iter().map(IntervalSim::cpi).collect();
        let est = weighted_cpi_with(&result.simpoint.points, &result.weights[b], &cpis);
        est_cycles[b] = est * full.instructions as f64;
        true_cycles[b] = full.cycles as f64;
        println!(
            "  {:<9} true CPI {:.3}  estimated CPI {:.3}",
            bin.label(),
            full.cpi(),
            est
        );
    }

    // 4. The question the paper asks: how much faster is the optimized
    //    binary, and does sampled simulation answer it correctly?
    let true_speedup = true_cycles[0] / true_cycles[1];
    let est_speedup = est_cycles[0] / est_cycles[1];
    println!(
        "32u -> 32o speedup: true {:.3}x, estimated {:.3}x (error {:.2}%)",
        true_speedup,
        est_speedup,
        100.0 * ((true_speedup - est_speedup) / true_speedup).abs()
    );
    Ok(())
}
