//! Compiler-optimization study — the paper's third motivating scenario
//! (§1): "for a new architecture, the compiler team needs to evaluate
//! the performance effects of compiler optimizations using simulation,
//! before working prototypes of the processor are available."
//!
//! This example measures how well sampled simulation predicts the
//! -O0 → -O2 speedup on two *different* memory-system designs, using
//! one set of mappable simulation points for both binaries. It also
//! answers the design-ranking question: which (binary, architecture)
//! pair is fastest?
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example compiler_opt_study
//! ```

use cross_binary_simpoints::core::weighted_cpi_with;
use cross_binary_simpoints::prelude::*;
use cross_binary_simpoints::sim::{CacheLevelConfig, IntervalSim};

/// A hypothetical next-generation design: double the L2, faster DRAM.
fn bigger_l2() -> MemoryConfig {
    let mut m = MemoryConfig::table1();
    m.l2 = CacheLevelConfig {
        capacity_bytes: 1024 * 1024,
        associativity: 16,
        line_bytes: 64,
        hit_latency: 16,
    };
    m.dram_latency = 200;
    m
}

fn main() -> Result<(), CbspError> {
    let input = Input::train();
    let program = workloads::by_name("twolf")
        .expect("in suite")
        .build(Scale::Train);
    let o0 = compile(&program, CompileTarget::W64_O0);
    let o2 = compile(&program, CompileTarget::W64_O2);

    // One set of simulation points, picked ONCE, reused for every
    // (binary, architecture) combination — the whole point of the
    // technique: the same parts of execution are measured everywhere.
    let config = CbspConfig {
        interval_target: 50_000,
        ..CbspConfig::default()
    };
    let result = run_cross_binary(&[&o0, &o2], &input, &config)?;
    println!(
        "{}: {} mappable points, {} phases\n",
        program.name,
        result.mappable.points.len(),
        result.simpoint.k
    );

    let designs: [(&str, MemoryConfig); 2] =
        [("table1", MemoryConfig::table1()), ("bigL2", bigger_l2())];

    println!(
        "{:<8} {:<8} {:>10} {:>10} {:>12} {:>12}",
        "design", "binary", "true CPI", "est CPI", "true cycles", "est cycles"
    );
    let mut best_true = (f64::INFINITY, String::new());
    let mut best_est = (f64::INFINITY, String::new());
    for (dname, mem) in &designs {
        for (b, bin) in [&o0, &o2].into_iter().enumerate() {
            let (full, mut intervals) =
                simulate_marker_sliced(bin, &input, mem, &result.boundaries[b]);
            intervals.resize(result.interval_count(), IntervalSim::default());
            let cpis: Vec<f64> = intervals.iter().map(IntervalSim::cpi).collect();
            let est_cpi = weighted_cpi_with(&result.simpoint.points, &result.weights[b], &cpis);
            let est_cycles = est_cpi * full.instructions as f64;
            println!(
                "{:<8} {:<8} {:>10.3} {:>10.3} {:>12} {:>12.0}",
                dname,
                bin.label(),
                full.cpi(),
                est_cpi,
                full.cycles,
                est_cycles
            );
            let key = format!("{dname}/{}", bin.label());
            if (full.cycles as f64) < best_true.0 {
                best_true = (full.cycles as f64, key.clone());
            }
            if est_cycles < best_est.0 {
                best_est = (est_cycles, key);
            }
        }
    }
    println!(
        "\nfastest (binary, architecture) pair: true = {}, estimated = {} -> {}",
        best_true.1,
        best_est.1,
        if best_true.1 == best_est.1 {
            "design decision CORRECT"
        } else {
            "design decision WRONG"
        }
    );
    Ok(())
}
