//! Phase analysis: look inside the cross-binary machinery.
//!
//! Shows, for one benchmark: the mappable points found per kind (and
//! which were recovered from inlining), the variable-length intervals,
//! the chosen phases with their per-binary weights, and a Table 2-style
//! per-phase bias comparison — demonstrating the *consistent bias*
//! property of mappable simulation points (paper §5.2.1).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example phase_analysis [benchmark]
//! ```

use cross_binary_simpoints::prelude::*;
use cross_binary_simpoints::sim::IntervalSim;

fn main() -> Result<(), CbspError> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "fma3d".to_string());
    let program = workloads::by_name(&name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}; see cbsp_program::workloads"))
        .build(Scale::Train);
    let input = Input::train();
    let binaries: Vec<Binary> = CompileTarget::ALL_FOUR
        .iter()
        .map(|&t| compile(&program, t))
        .collect();

    let config = CbspConfig {
        interval_target: 50_000,
        ..CbspConfig::default()
    };
    let result = run_cross_binary(&binaries.iter().collect::<Vec<_>>(), &input, &config)?;

    // --- Mappable points.
    let count = |k: PointKind| result.mappable.of_kind(k).count();
    let recovered = result
        .mappable
        .points
        .iter()
        .filter(|p| p.recovered)
        .count();
    println!("=== {name}: mappable points ===");
    println!(
        "procedure entries: {}, loop entries: {}, loop bodies: {} ({} recovered from inlining, {} procedures)",
        count(PointKind::ProcEntry),
        count(PointKind::LoopEntry),
        count(PointKind::LoopBody),
        recovered,
        result.recovered_procs
    );
    for p in result.mappable.points.iter().filter(|p| p.recovered) {
        println!(
            "  recovered: {} (executes {} times in every binary)",
            p.label, p.execs
        );
    }

    // --- Intervals.
    println!("\n=== variable-length intervals ===");
    println!(
        "{} intervals, average size {:.0} instructions (target {})",
        result.interval_count(),
        result.vli.average_interval_size(),
        config.interval_target
    );

    // --- Phases and per-binary weights.
    println!("\n=== phases (weights recalculated per binary) ===");
    print!("{:<7}", "phase");
    for bin in &binaries {
        print!(" {:>8}", bin.label());
    }
    println!();
    for pt in &result.simpoint.points {
        print!("{:<7}", pt.phase);
        for b in 0..binaries.len() {
            print!(" {:>8.3}", result.weights[b][pt.phase as usize]);
        }
        println!();
    }

    // --- Per-phase bias across binaries (the consistency property).
    println!("\n=== per-phase CPI bias (true vs simulation point), per binary ===");
    let mem = MemoryConfig::table1();
    let mut all_stats: Vec<Vec<IntervalSim>> = Vec::new();
    for (b, bin) in binaries.iter().enumerate() {
        let (_, mut intervals) = simulate_marker_sliced(bin, &input, &mem, &result.boundaries[b]);
        intervals.resize(result.interval_count(), IntervalSim::default());
        all_stats.push(intervals);
    }
    print!("{:<7}", "phase");
    for bin in &binaries {
        print!(" {:>9}", bin.label());
    }
    println!("   (bias = (true - SP) / true)");
    for pt in &result.simpoint.points {
        print!("{:<7}", pt.phase);
        for stats in &all_stats {
            let mut cyc = 0.0;
            let mut ins = 0.0;
            for (i, &l) in result.simpoint.labels.iter().enumerate() {
                if l == pt.phase {
                    cyc += stats[i].cycles as f64;
                    ins += stats[i].instructions as f64;
                }
            }
            let true_cpi = if ins > 0.0 { cyc / ins } else { 0.0 };
            let sp_cpi = stats[pt.interval].cpi();
            let bias = if true_cpi > 0.0 {
                100.0 * (true_cpi - sp_cpi) / true_cpi
            } else {
                0.0
            };
            print!(" {:>8.2}%", bias);
        }
        println!();
    }
    println!("\nConsistent signs/magnitudes across a row = the consistent-bias property");
    println!("that makes cross-binary speedup estimates trustworthy (paper §5.2.1).");
    Ok(())
}
