//! Bring your own program: build a custom source program with
//! [`ProgramBuilder`], compile it four ways, and run the complete
//! cross-binary methodology on it — the workflow a user studying their
//! *own* workload follows, rather than the canned suite.
//!
//! The program models a tiny database: a build phase, a query loop with
//! a hot inlined comparator, and a periodic compaction pass. Note which
//! constructs survive as mappable points in the output.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_program
//! ```

use cross_binary_simpoints::prelude::*;
use cross_binary_simpoints::program::{Cond, LoopHints, ProgramBuilder, TripCount};
use cross_binary_simpoints::sim::IntervalSim;

fn build_program() -> cross_binary_simpoints::program::SourceProgram {
    let mut b = ProgramBuilder::new("tinydb");
    let index = b.array_ptr("index", 64_000); // pointer-sized: bigger on 64-bit
    let rows = b.array_f64("rows", 96_000);
    let log = b.array_i32("log", 2_000);

    b.proc("main", |p| {
        // Load phase: stream rows in.
        p.loop_fixed(400, |body| {
            body.compute(60, |k| {
                k.seq(rows, 16).seq(index, 4);
            });
        });
        // Query phase: point lookups with a hot comparator; the
        // comparator is inlined at -O2 (watch it vanish from the
        // mappable procedure list and come back via recovery).
        p.loop_fixed(3_000, |query| {
            query.call("lookup");
            query.if_then(Cond::IterMod { m: 64, r: 63 }, |t| t.call("compact"));
        });
    });
    b.proc("lookup", |p| {
        p.loop_random(4, 10, |probe| {
            probe.call("compare");
            probe.compute(14, |k| {
                k.gather(index, 4096, 2);
            });
        });
    });
    b.inline_proc("compare", |p| {
        p.loop_fixed(3, |body| {
            body.compute(12, |k| {
                k.seq(log, 1);
            });
        });
    });
    b.proc("compact", |p| {
        p.loop_with(
            TripCount::Fixed(120),
            LoopHints {
                unroll: 4,
                split: false,
            },
            |body| {
                body.compute(30, |k| {
                    k.seq(rows, 8);
                });
            },
        );
    });
    b.finish()
}

fn main() -> Result<(), CbspError> {
    let program = build_program();
    println!("{program}");

    let input = Input::new("demo", 42, Scale::Test);
    let binaries: Vec<Binary> = CompileTarget::ALL_FOUR
        .iter()
        .map(|&t| compile(&program, t))
        .collect();

    let config = CbspConfig {
        interval_target: 30_000,
        ..CbspConfig::default()
    };
    let result = run_cross_binary(&binaries.iter().collect::<Vec<_>>(), &input, &config)?;

    println!("mappable points across all four binaries:");
    for p in &result.mappable.points {
        println!(
            "  {:<28} executes {:>7}x{}",
            p.label,
            p.execs,
            if p.recovered {
                "   (recovered from inlining)"
            } else {
                ""
            }
        );
    }
    println!(
        "\n{} intervals, {} phases; checking estimates:",
        result.interval_count(),
        result.simpoint.k
    );

    let mem = MemoryConfig::table1();
    for (b, bin) in binaries.iter().enumerate() {
        let (full, mut ivs) = simulate_marker_sliced(bin, &input, &mem, &result.boundaries[b]);
        ivs.resize(result.interval_count(), IntervalSim::default());
        let cpis: Vec<f64> = ivs.iter().map(IntervalSim::cpi).collect();
        let est = cross_binary_simpoints::core::weighted_cpi_with(
            &result.simpoint.points,
            &result.weights[b],
            &cpis,
        );
        println!(
            "  {:<12} true CPI {:>6.3}   estimated {:>6.3}   error {:>5.2}%",
            bin.label(),
            full.cpi(),
            est,
            100.0 * (full.cpi() - est).abs() / full.cpi()
        );
    }
    Ok(())
}
